#include "ml/knn.h"

#include <gtest/gtest.h>

namespace warper::ml {
namespace {

TEST(KNearestTest, OrdersByDistance) {
  nn::Matrix corpus = nn::Matrix::FromRows({{0.0}, {1.0}, {5.0}, {0.4}});
  std::vector<size_t> nearest = KNearest(corpus, {0.0}, 3);
  ASSERT_EQ(nearest.size(), 3u);
  EXPECT_EQ(nearest[0], 0u);
  EXPECT_EQ(nearest[1], 3u);
  EXPECT_EQ(nearest[2], 1u);
}

TEST(KNearestTest, KLargerThanCorpus) {
  nn::Matrix corpus = nn::Matrix::FromRows({{1.0}, {2.0}});
  std::vector<size_t> nearest = KNearest(corpus, {0.0}, 10);
  EXPECT_EQ(nearest.size(), 2u);
}

TEST(KNearestTest, MultiDimensional) {
  nn::Matrix corpus = nn::Matrix::FromRows({{0, 0}, {3, 4}, {1, 0}});
  std::vector<size_t> nearest = KNearest(corpus, {0.9, 0.0}, 1);
  EXPECT_EQ(nearest[0], 2u);
}

TEST(KnnClassifyTest, MajorityVote) {
  nn::Matrix corpus =
      nn::Matrix::FromRows({{0.0}, {0.1}, {0.2}, {5.0}, {5.1}});
  std::vector<size_t> labels = {7, 7, 7, 9, 9};
  EXPECT_EQ(KnnClassify(corpus, labels, {0.05}, 3), 7u);
  EXPECT_EQ(KnnClassify(corpus, labels, {5.05}, 2), 9u);
}

TEST(KnnClassifyTest, TieBreaksTowardClosest) {
  nn::Matrix corpus = nn::Matrix::FromRows({{0.0}, {1.0}});
  std::vector<size_t> labels = {1, 2};
  // k=2 gives one vote each; the closest neighbour's label wins.
  EXPECT_EQ(KnnClassify(corpus, labels, {0.1}, 2), 1u);
  EXPECT_EQ(KnnClassify(corpus, labels, {0.9}, 2), 2u);
}

TEST(KnnClassifyTest, SingleNeighbour) {
  nn::Matrix corpus = nn::Matrix::FromRows({{2.0, 2.0}});
  std::vector<size_t> labels = {4};
  EXPECT_EQ(KnnClassify(corpus, labels, {0.0, 0.0}, 5), 4u);
}

}  // namespace
}  // namespace warper::ml
