#include "ml/linalg.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace warper::ml {
namespace {

TEST(SymmetricEigenTest, DiagonalMatrix) {
  nn::Matrix m(3, 3);
  m.At(0, 0) = 1.0;
  m.At(1, 1) = 5.0;
  m.At(2, 2) = 3.0;
  EigenDecomposition eig = SymmetricEigen(m);
  EXPECT_NEAR(eig.values[0], 5.0, 1e-10);
  EXPECT_NEAR(eig.values[1], 3.0, 1e-10);
  EXPECT_NEAR(eig.values[2], 1.0, 1e-10);
}

TEST(SymmetricEigenTest, Known2x2) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
  nn::Matrix m = nn::Matrix::FromRows({{2, 1}, {1, 2}});
  EigenDecomposition eig = SymmetricEigen(m);
  EXPECT_NEAR(eig.values[0], 3.0, 1e-10);
  EXPECT_NEAR(eig.values[1], 1.0, 1e-10);
  // Eigenvector for 3 is (1,1)/√2 up to sign.
  double v0 = eig.vectors.At(0, 0);
  double v1 = eig.vectors.At(0, 1);
  EXPECT_NEAR(std::abs(v0), std::sqrt(0.5), 1e-8);
  EXPECT_NEAR(v0, v1, 1e-8);
}

TEST(SymmetricEigenTest, ReconstructsMatrix) {
  util::Rng rng(3);
  // Random symmetric 5x5.
  nn::Matrix m(5, 5);
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = i; j < 5; ++j) {
      double v = rng.Normal();
      m.At(i, j) = v;
      m.At(j, i) = v;
    }
  }
  EigenDecomposition eig = SymmetricEigen(m);
  // A = Σ λ_k v_k v_kᵀ.
  nn::Matrix recon(5, 5);
  for (size_t k = 0; k < 5; ++k) {
    std::vector<double> v = eig.vectors.Row(k);
    for (size_t i = 0; i < 5; ++i) {
      for (size_t j = 0; j < 5; ++j) {
        recon.At(i, j) += eig.values[k] * v[i] * v[j];
      }
    }
  }
  for (size_t i = 0; i < 25; ++i) {
    EXPECT_NEAR(recon.data()[i], m.data()[i], 1e-8);
  }
}

TEST(SymmetricEigenTest, EigenvectorsOrthonormal) {
  util::Rng rng(5);
  nn::Matrix m(4, 4);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = i; j < 4; ++j) {
      double v = rng.Uniform(-1, 1);
      m.At(i, j) = v;
      m.At(j, i) = v;
    }
  }
  EigenDecomposition eig = SymmetricEigen(m);
  for (size_t a = 0; a < 4; ++a) {
    for (size_t b = 0; b < 4; ++b) {
      double dot = 0.0;
      for (size_t k = 0; k < 4; ++k) {
        dot += eig.vectors.At(a, k) * eig.vectors.At(b, k);
      }
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(CholeskySolveTest, SolvesIdentity) {
  nn::Matrix eye(3, 3);
  for (size_t i = 0; i < 3; ++i) eye.At(i, i) = 1.0;
  nn::Matrix b = nn::Matrix::FromRows({{1}, {2}, {3}});
  nn::Matrix x = CholeskySolve(eye, b);
  EXPECT_NEAR(x.At(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(x.At(1, 0), 2.0, 1e-12);
  EXPECT_NEAR(x.At(2, 0), 3.0, 1e-12);
}

TEST(CholeskySolveTest, SolvesRandomSpdSystem) {
  util::Rng rng(7);
  // A = BᵀB + I is SPD.
  nn::Matrix b(6, 6);
  for (double& v : b.data()) v = rng.Normal();
  nn::Matrix a = b.TransposeMatMul(b);
  for (size_t i = 0; i < 6; ++i) a.At(i, i) += 1.0;

  nn::Matrix x_true(6, 1);
  for (size_t i = 0; i < 6; ++i) x_true.At(i, 0) = rng.Normal();
  nn::Matrix rhs = a.MatMul(x_true);
  nn::Matrix x = CholeskySolve(a, rhs);
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(x.At(i, 0), x_true.At(i, 0), 1e-8);
  }
}

TEST(CholeskySolveTest, RidgeRegularizes) {
  // Singular matrix becomes solvable with ridge.
  nn::Matrix a = nn::Matrix::FromRows({{1, 1}, {1, 1}});
  nn::Matrix b = nn::Matrix::FromRows({{2}, {2}});
  nn::Matrix x = CholeskySolve(a, b, 1e-3);
  EXPECT_NEAR(x.At(0, 0), x.At(1, 0), 1e-9);
  EXPECT_NEAR(x.At(0, 0) + x.At(1, 0), 2.0, 0.01);
}

TEST(CholeskySolveTest, MultipleRightHandSides) {
  nn::Matrix a = nn::Matrix::FromRows({{4, 0}, {0, 9}});
  nn::Matrix b = nn::Matrix::FromRows({{4, 8}, {9, 18}});
  nn::Matrix x = CholeskySolve(a, b);
  EXPECT_NEAR(x.At(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(x.At(0, 1), 2.0, 1e-12);
  EXPECT_NEAR(x.At(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(x.At(1, 1), 2.0, 1e-12);
}

TEST(CholeskySolveDeathTest, NonSpdDies) {
  nn::Matrix a = nn::Matrix::FromRows({{-1, 0}, {0, -1}});
  nn::Matrix b(2, 1);
  EXPECT_DEATH(CholeskySolve(a, b), "not SPD");
}

}  // namespace
}  // namespace warper::ml
