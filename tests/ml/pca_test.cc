#include "ml/pca.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace warper::ml {
namespace {

TEST(PcaTest, RecoversDominantDirection) {
  util::Rng rng(3);
  // Points stretched along (1, 1)/√2 with small orthogonal noise.
  nn::Matrix points(500, 2);
  for (size_t i = 0; i < 500; ++i) {
    double t = rng.Normal(0, 3.0);
    double n = rng.Normal(0, 0.1);
    points.SetRow(i, {t + n, t - n});
  }
  Pca pca;
  pca.Fit(points, 1);
  ASSERT_TRUE(pca.fitted());
  EXPECT_EQ(pca.num_components(), 1u);

  // The component should align with (1,1)/√2 up to sign.
  std::vector<double> proj1 = pca.TransformRow({1.0, 1.0});
  std::vector<double> proj2 = pca.TransformRow({1.0, -1.0});
  EXPECT_GT(std::abs(proj1[0]), std::abs(proj2[0]) * 5);
  EXPECT_GT(pca.ExplainedVarianceRatio(), 0.98);
}

TEST(PcaTest, TransformMatchesTransformRow) {
  util::Rng rng(5);
  nn::Matrix points(50, 4);
  for (double& v : points.data()) v = rng.Normal();
  Pca pca;
  pca.Fit(points, 2);
  nn::Matrix all = pca.Transform(points);
  for (size_t r = 0; r < 10; ++r) {
    std::vector<double> row = pca.TransformRow(points.Row(r));
    for (size_t c = 0; c < 2; ++c) {
      EXPECT_NEAR(all.At(r, c), row[c], 1e-12);
    }
  }
}

TEST(PcaTest, ProjectionIsMeanCentered) {
  util::Rng rng(7);
  nn::Matrix points(200, 3);
  for (size_t i = 0; i < 200; ++i) {
    points.SetRow(i, {rng.Normal(10, 1), rng.Normal(-5, 2), rng.Normal(0, 1)});
  }
  Pca pca;
  pca.Fit(points, 3);
  nn::Matrix proj = pca.Transform(points);
  for (size_t c = 0; c < 3; ++c) {
    double mean = 0.0;
    for (size_t r = 0; r < 200; ++r) mean += proj.At(r, c);
    EXPECT_NEAR(mean / 200.0, 0.0, 1e-9);
  }
}

TEST(PcaTest, ComponentCountClampedToInputDim) {
  util::Rng rng(9);
  nn::Matrix points(20, 2);
  for (double& v : points.data()) v = rng.Normal();
  Pca pca;
  pca.Fit(points, 10);
  EXPECT_EQ(pca.num_components(), 2u);
  EXPECT_NEAR(pca.ExplainedVarianceRatio(), 1.0, 1e-9);
}

TEST(PcaTest, ConstantFeatureContributesNothing) {
  util::Rng rng(11);
  nn::Matrix points(100, 2);
  for (size_t i = 0; i < 100; ++i) points.SetRow(i, {rng.Normal(), 7.0});
  Pca pca;
  pca.Fit(points, 1);
  // The kept component captures everything (second feature is constant).
  EXPECT_NEAR(pca.ExplainedVarianceRatio(), 1.0, 1e-9);
}

TEST(PcaDeathTest, TransformBeforeFit) {
  Pca pca;
  nn::Matrix points(3, 2);
  EXPECT_DEATH(pca.Transform(points), "WARPER_CHECK");
}

}  // namespace
}  // namespace warper::ml
