#include "ml/decision_tree.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace warper::ml {
namespace {

std::vector<size_t> AllRows(size_t n) {
  std::vector<size_t> rows(n);
  for (size_t i = 0; i < n; ++i) rows[i] = i;
  return rows;
}

TEST(RegressionTreeTest, ConstantTargetSingleLeaf) {
  nn::Matrix x(10, 1);
  for (size_t i = 0; i < 10; ++i) x.At(i, 0) = static_cast<double>(i);
  std::vector<double> y(10, 3.0);
  RegressionTree tree;
  tree.Fit(x, y, AllRows(10), TreeConfig{});
  EXPECT_EQ(tree.NodeCount(), 1u);
  EXPECT_DOUBLE_EQ(tree.Predict({5.0}), 3.0);
}

TEST(RegressionTreeTest, LearnsStepFunction) {
  nn::Matrix x(40, 1);
  std::vector<double> y(40);
  for (size_t i = 0; i < 40; ++i) {
    x.At(i, 0) = static_cast<double>(i);
    y[i] = i < 20 ? -1.0 : 1.0;
  }
  TreeConfig config;
  config.max_depth = 2;
  config.min_samples_leaf = 2;
  RegressionTree tree;
  tree.Fit(x, y, AllRows(40), config);
  EXPECT_DOUBLE_EQ(tree.Predict({5.0}), -1.0);
  EXPECT_DOUBLE_EQ(tree.Predict({35.0}), 1.0);
}

TEST(RegressionTreeTest, PicksInformativeFeature) {
  util::Rng rng(3);
  nn::Matrix x(100, 2);
  std::vector<double> y(100);
  for (size_t i = 0; i < 100; ++i) {
    double informative = rng.Uniform(0, 1);
    x.At(i, 0) = rng.Uniform(0, 1);  // noise feature
    x.At(i, 1) = informative;
    y[i] = informative > 0.5 ? 10.0 : 0.0;
  }
  TreeConfig config;
  config.max_depth = 1;
  RegressionTree tree;
  tree.Fit(x, y, AllRows(100), config);
  // A depth-1 tree must split on the informative feature to explain y.
  EXPECT_GT(tree.Predict({0.5, 0.9}), 8.0);
  EXPECT_LT(tree.Predict({0.5, 0.1}), 2.0);
}

TEST(RegressionTreeTest, RespectsMaxDepth) {
  util::Rng rng(5);
  nn::Matrix x(200, 1);
  std::vector<double> y(200);
  for (size_t i = 0; i < 200; ++i) {
    x.At(i, 0) = rng.Uniform(0, 1);
    y[i] = x.At(i, 0);
  }
  TreeConfig config;
  config.max_depth = 2;
  config.min_samples_leaf = 1;
  RegressionTree tree;
  tree.Fit(x, y, AllRows(200), config);
  // Depth 2 → at most 7 nodes (1 + 2 + 4).
  EXPECT_LE(tree.NodeCount(), 7u);
}

TEST(RegressionTreeTest, MinSamplesLeafRespected) {
  nn::Matrix x(6, 1);
  std::vector<double> y(6);
  for (size_t i = 0; i < 6; ++i) {
    x.At(i, 0) = static_cast<double>(i);
    y[i] = static_cast<double>(i);
  }
  TreeConfig config;
  config.max_depth = 10;
  config.min_samples_leaf = 3;
  RegressionTree tree;
  tree.Fit(x, y, AllRows(6), config);
  // Only one split possible (3|3).
  EXPECT_LE(tree.NodeCount(), 3u);
}

TEST(RegressionTreeTest, DuplicateFeatureValuesDontSplit) {
  nn::Matrix x(8, 1, 1.0);  // all identical
  std::vector<double> y = {0, 1, 0, 1, 0, 1, 0, 1};
  RegressionTree tree;
  tree.Fit(x, y, AllRows(8), TreeConfig{});
  EXPECT_EQ(tree.NodeCount(), 1u);
  EXPECT_DOUBLE_EQ(tree.Predict({1.0}), 0.5);
}

TEST(RegressionTreeTest, FitOnRowSubset) {
  nn::Matrix x(10, 1);
  std::vector<double> y(10);
  for (size_t i = 0; i < 10; ++i) {
    x.At(i, 0) = static_cast<double>(i);
    y[i] = i < 5 ? 100.0 : 0.0;  // only the subset below matters
  }
  // Train only on rows 5..9 (all zeros).
  RegressionTree tree;
  tree.Fit(x, y, {5, 6, 7, 8, 9}, TreeConfig{});
  EXPECT_DOUBLE_EQ(tree.Predict({2.0}), 0.0);
}

TEST(RegressionTreeDeathTest, PredictBeforeFit) {
  RegressionTree tree;
  EXPECT_DEATH(tree.Predict({1.0}), "WARPER_CHECK");
}

}  // namespace
}  // namespace warper::ml
