#include "ml/gbt.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace warper::ml {
namespace {

TEST(GbtTest, LearnsNonlinearFunction) {
  util::Rng rng(3);
  nn::Matrix x(400, 2);
  std::vector<double> y(400);
  for (size_t i = 0; i < 400; ++i) {
    double a = rng.Uniform(0, 1), b = rng.Uniform(0, 1);
    x.SetRow(i, {a, b});
    y[i] = a * b + (a > 0.5 ? 1.0 : 0.0);  // interaction + step
  }
  GbtConfig config;
  config.num_trees = 80;
  config.learning_rate = 0.1;
  GradientBoostedTrees gbt;
  gbt.Fit(x, y, config, &rng);

  double sse = 0.0;
  for (size_t i = 0; i < 400; ++i) {
    double d = gbt.Predict(x.Row(i)) - y[i];
    sse += d * d;
  }
  EXPECT_LT(sse / 400.0, 0.02);
}

TEST(GbtTest, BasePredictionIsMeanWithZeroTrees) {
  util::Rng rng(5);
  nn::Matrix x(4, 1);
  std::vector<double> y = {1.0, 2.0, 3.0, 4.0};
  GbtConfig config;
  config.num_trees = 0;
  GradientBoostedTrees gbt;
  gbt.Fit(x, y, config, &rng);
  EXPECT_DOUBLE_EQ(gbt.Predict({0.0}), 2.5);
  EXPECT_EQ(gbt.num_trees(), 0u);
}

TEST(GbtTest, MoreTreesReduceTrainingError) {
  util::Rng rng(7);
  nn::Matrix x(200, 1);
  std::vector<double> y(200);
  for (size_t i = 0; i < 200; ++i) {
    x.At(i, 0) = rng.Uniform(0, 1);
    y[i] = std::sin(6.0 * x.At(i, 0));
  }
  auto train_error = [&](int trees) {
    GbtConfig config;
    config.num_trees = trees;
    config.learning_rate = 0.1;
    config.subsample = 1.0;
    GradientBoostedTrees gbt;
    util::Rng local(7);
    gbt.Fit(x, y, config, &local);
    double sse = 0.0;
    for (size_t i = 0; i < 200; ++i) {
      double d = gbt.Predict(x.Row(i)) - y[i];
      sse += d * d;
    }
    return sse;
  };
  EXPECT_LT(train_error(60), train_error(5));
}

TEST(GbtTest, DeterministicGivenSeed) {
  nn::Matrix x(50, 1);
  std::vector<double> y(50);
  util::Rng data_rng(9);
  for (size_t i = 0; i < 50; ++i) {
    x.At(i, 0) = data_rng.Uniform(0, 1);
    y[i] = x.At(i, 0) * 2.0;
  }
  GbtConfig config;
  config.num_trees = 10;
  GradientBoostedTrees a, b;
  util::Rng ra(42), rb(42);
  a.Fit(x, y, config, &ra);
  b.Fit(x, y, config, &rb);
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(a.Predict(x.Row(i)), b.Predict(x.Row(i)));
  }
}

TEST(GbtDeathTest, PredictBeforeFit) {
  GradientBoostedTrees gbt;
  EXPECT_DEATH(gbt.Predict({1.0}), "WARPER_CHECK");
}

}  // namespace
}  // namespace warper::ml
