#include "storage/parallel_annotator.h"

#include <gtest/gtest.h>

#include "storage/annotator.h"
#include "storage/datasets.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace warper::storage {
namespace {

TEST(ParallelAnnotatorTest, MatchesSerialAnnotatorExactly) {
  Table t = MakePrsa(20000, 3);
  Annotator serial(&t);
  ParallelAnnotator parallel(&t, 4);
  util::Rng rng(3);
  std::vector<RangePredicate> preds = workload::GenerateWorkload(
      t, {workload::GenMethod::kW1, workload::GenMethod::kW3,
          workload::GenMethod::kW5},
      50, &rng);
  EXPECT_EQ(parallel.BatchCount(preds), serial.BatchCount(preds));
}

TEST(ParallelAnnotatorTest, SingleThreadFallback) {
  Table t = MakeHiggs(3000, 5);
  Annotator serial(&t);
  ParallelAnnotator parallel(&t, 1);
  util::Rng rng(5);
  std::vector<RangePredicate> preds =
      workload::GenerateWorkload(t, {workload::GenMethod::kW2}, 20, &rng);
  EXPECT_EQ(parallel.BatchCount(preds), serial.BatchCount(preds));
}

TEST(ParallelAnnotatorTest, TinyTableUsesOneWorker) {
  // Fewer than 1024 rows → single worker regardless of thread budget.
  Table t = MakePoker(500, 7);
  Annotator serial(&t);
  ParallelAnnotator parallel(&t, 8);
  util::Rng rng(7);
  std::vector<RangePredicate> preds =
      workload::GenerateWorkload(t, {workload::GenMethod::kW1}, 10, &rng);
  EXPECT_EQ(parallel.BatchCount(preds), serial.BatchCount(preds));
}

TEST(ParallelAnnotatorTest, DefaultThreadsPositive) {
  Table t = MakePoker(100, 9);
  ParallelAnnotator parallel(&t);
  EXPECT_GE(parallel.num_threads(), 1);
}

TEST(ParallelAnnotatorTest, EmptyBatch) {
  Table t = MakePoker(100, 11);
  ParallelAnnotator parallel(&t, 2);
  EXPECT_TRUE(parallel.BatchCount({}).empty());
}

// Parameterized over thread counts: counts are invariant.
class ThreadSweep : public ::testing::TestWithParam<int> {};

TEST_P(ThreadSweep, CountsInvariantUnderThreadCount) {
  Table t = MakeHiggs(8000, 13);
  Annotator serial(&t);
  ParallelAnnotator parallel(&t, GetParam());
  util::Rng rng(13);
  std::vector<RangePredicate> preds = workload::GenerateWorkload(
      t, {workload::GenMethod::kW4}, 15, &rng);
  EXPECT_EQ(parallel.BatchCount(preds), serial.BatchCount(preds));
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadSweep, ::testing::Values(1, 2, 3, 7));

}  // namespace
}  // namespace warper::storage
