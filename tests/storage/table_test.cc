#include "storage/table.h"

#include <gtest/gtest.h>

namespace warper::storage {
namespace {

Table MakeTwoColumnTable() {
  Table t("t");
  t.AddColumn("a", ColumnType::kNumeric);
  t.AddColumn("b", ColumnType::kNumeric);
  t.AppendRow({1.0, 10.0});
  t.AppendRow({2.0, 20.0});
  t.AppendRow({3.0, 30.0});
  return t;
}

TEST(TableTest, AppendAndShape) {
  Table t = MakeTwoColumnTable();
  EXPECT_EQ(t.NumRows(), 3u);
  EXPECT_EQ(t.NumColumns(), 2u);
  EXPECT_DOUBLE_EQ(t.column(1).Value(2), 30.0);
  t.CheckRowAlignment();
}

TEST(TableTest, ColumnIndexLookup) {
  Table t = MakeTwoColumnTable();
  EXPECT_EQ(t.ColumnIndex("b").ValueOrDie(), 1u);
  Result<size_t> missing = t.ColumnIndex("zzz");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(TableTest, UpdateCell) {
  Table t = MakeTwoColumnTable();
  t.UpdateCell(1, 0, 99.0);
  EXPECT_DOUBLE_EQ(t.column(0).Value(1), 99.0);
}

TEST(TableTest, SortByColumnReordersAllColumns) {
  Table t("t");
  t.AddColumn("key", ColumnType::kNumeric);
  t.AddColumn("payload", ColumnType::kNumeric);
  t.AppendRow({3.0, 300.0});
  t.AppendRow({1.0, 100.0});
  t.AppendRow({2.0, 200.0});
  t.SortByColumn(0);
  EXPECT_DOUBLE_EQ(t.column(0).Value(0), 1.0);
  EXPECT_DOUBLE_EQ(t.column(1).Value(0), 100.0);
  EXPECT_DOUBLE_EQ(t.column(0).Value(2), 3.0);
  EXPECT_DOUBLE_EQ(t.column(1).Value(2), 300.0);
}

TEST(TableTest, TruncateShrinks) {
  Table t = MakeTwoColumnTable();
  t.Truncate(1);
  EXPECT_EQ(t.NumRows(), 1u);
  t.CheckRowAlignment();
}

TEST(TableTest, ChangeCounterTracksMutations) {
  Table t = MakeTwoColumnTable();
  uint64_t snapshot = t.ChangeCounter();
  EXPECT_DOUBLE_EQ(t.ChangedFractionSince(snapshot), 0.0);

  t.AppendRow({4.0, 40.0});
  EXPECT_NEAR(t.ChangedFractionSince(snapshot), 0.25, 1e-12);

  t.UpdateCell(0, 0, 9.0);
  EXPECT_NEAR(t.ChangedFractionSince(snapshot), 0.5, 1e-12);
}

TEST(TableTest, TruncateCountsRemovedRows) {
  Table t = MakeTwoColumnTable();
  uint64_t snapshot = t.ChangeCounter();
  t.Truncate(1);
  // 2 rows removed out of 1 remaining → clamped to 1.
  EXPECT_DOUBLE_EQ(t.ChangedFractionSince(snapshot), 1.0);
}

TEST(TableTest, SortDoesNotCountAsChange) {
  Table t = MakeTwoColumnTable();
  uint64_t snapshot = t.ChangeCounter();
  t.SortByColumn(0);
  EXPECT_DOUBLE_EQ(t.ChangedFractionSince(snapshot), 0.0);
}

TEST(TableDeathTest, AddColumnAfterRows) {
  Table t = MakeTwoColumnTable();
  EXPECT_DEATH(t.AddColumn("c", ColumnType::kNumeric),
               "before any rows");
}

TEST(TableDeathTest, RowWidthMismatch) {
  Table t = MakeTwoColumnTable();
  EXPECT_DEATH(t.AppendRow({1.0}), "row width");
}

}  // namespace
}  // namespace warper::storage
