#include "storage/data_drift.h"

#include <gtest/gtest.h>

#include "storage/datasets.h"

namespace warper::storage {
namespace {

TEST(AppendShiftedRowsTest, GrowsTableAndCountsChanges) {
  Table t = MakePrsa(2000, 1);
  util::Rng rng(3);
  uint64_t snapshot = t.ChangeCounter();
  AppendShiftedRows(&t, 0.2, 0.1, &rng);
  EXPECT_EQ(t.NumRows(), 2400u);
  EXPECT_NEAR(t.ChangedFractionSince(snapshot), 400.0 / 2400.0, 1e-9);
  t.CheckRowAlignment();
}

TEST(AppendShiftedRowsTest, ShiftMovesNumericDomain) {
  Table t = MakePrsa(2000, 2);
  util::Rng rng(5);
  size_t pm25 = t.ColumnIndex("pm25").ValueOrDie();
  double old_max = t.column(pm25).Max();
  AppendShiftedRows(&t, 0.5, 0.5, &rng);
  EXPECT_GT(t.column(pm25).Max(), old_max);
}

TEST(AppendShiftedRowsTest, CategoricalColumnsUntouched) {
  Table t = MakePrsa(1000, 3);
  util::Rng rng(7);
  size_t station = t.ColumnIndex("station").ValueOrDie();
  size_t old_distinct = t.column(station).DistinctCount();
  AppendShiftedRows(&t, 1.0, 0.9, &rng);
  EXPECT_EQ(t.column(station).DistinctCount(), old_distinct);
}

TEST(UpdateRandomRowsTest, ChangesRequestedFraction) {
  Table t = MakeHiggs(2000, 1);
  util::Rng rng(9);
  uint64_t snapshot = t.ChangeCounter();
  UpdateRandomRows(&t, 0.3, &rng);
  EXPECT_EQ(t.NumRows(), 2000u);
  // Each updated row bumps the counter once per numeric column (8 columns).
  EXPECT_GT(t.ChangeCounter(), snapshot);
}

TEST(SortTruncateHalfTest, HalvesAndKeepsLowValues) {
  Table t = MakeHiggs(2000, 2);
  SortTruncateHalf(&t, 0);
  EXPECT_EQ(t.NumRows(), 1000u);
  // Remaining values are sorted ascending on column 0.
  for (size_t r = 1; r < t.NumRows(); ++r) {
    EXPECT_LE(t.column(0).Value(r - 1), t.column(0).Value(r));
  }
}

TEST(CanaryTest, NoDriftNoShift) {
  Table t = MakePrsa(3000, 3);
  Annotator annotator(&t);
  util::Rng rng(11);
  std::vector<RangePredicate> canaries = MakeCanaryPredicates(t, 8, &rng);
  std::vector<int64_t> baseline = annotator.BatchCount(canaries);
  EXPECT_DOUBLE_EQ(CanaryShift(annotator, canaries, baseline), 0.0);
}

TEST(CanaryTest, DataDriftProducesShift) {
  Table t = MakePrsa(3000, 4);
  Annotator annotator(&t);
  util::Rng rng(13);
  std::vector<RangePredicate> canaries = MakeCanaryPredicates(t, 8, &rng);
  std::vector<int64_t> baseline = annotator.BatchCount(canaries);
  SortTruncateHalf(&t, t.ColumnIndex("pm25").ValueOrDie());
  EXPECT_GT(CanaryShift(annotator, canaries, baseline), 0.2);
}

TEST(CanaryTest, PredicatesAreValid) {
  Table t = MakeHiggs(1000, 5);
  util::Rng rng(17);
  for (const RangePredicate& p : MakeCanaryPredicates(t, 20, &rng)) {
    ASSERT_EQ(p.NumColumns(), t.NumColumns());
    for (size_t c = 0; c < p.NumColumns(); ++c) {
      EXPECT_LE(p.low[c], p.high[c]);
      EXPECT_GE(p.low[c], t.column(c).Min());
      EXPECT_LE(p.high[c], t.column(c).Max());
    }
  }
}

}  // namespace
}  // namespace warper::storage
