#include "storage/column.h"

#include <gtest/gtest.h>

namespace warper::storage {
namespace {

TEST(ColumnTest, AppendAndRead) {
  Column c("x", ColumnType::kNumeric);
  c.Append(1.0);
  c.Append(2.0);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_DOUBLE_EQ(c.Value(0), 1.0);
  EXPECT_DOUBLE_EQ(c.Value(1), 2.0);
  EXPECT_EQ(c.name(), "x");
  EXPECT_EQ(c.type(), ColumnType::kNumeric);
}

TEST(ColumnTest, StatsComputed) {
  Column c("x", ColumnType::kNumeric);
  for (double v : {3.0, 1.0, 4.0, 1.0, 5.0}) c.Append(v);
  EXPECT_DOUBLE_EQ(c.Min(), 1.0);
  EXPECT_DOUBLE_EQ(c.Max(), 5.0);
  EXPECT_EQ(c.DistinctCount(), 4u);
}

TEST(ColumnTest, StatsRefreshAfterMutation) {
  Column c("x", ColumnType::kNumeric);
  c.Append(1.0);
  c.Append(2.0);
  EXPECT_DOUBLE_EQ(c.Max(), 2.0);
  c.SetValue(1, 10.0);
  EXPECT_DOUBLE_EQ(c.Max(), 10.0);
  c.Append(-5.0);
  EXPECT_DOUBLE_EQ(c.Min(), -5.0);
  c.Truncate(1);
  EXPECT_DOUBLE_EQ(c.Min(), 1.0);
  EXPECT_DOUBLE_EQ(c.Max(), 1.0);
}

TEST(ColumnTest, EmptyColumnStats) {
  Column c("x", ColumnType::kCategorical);
  EXPECT_DOUBLE_EQ(c.Min(), 0.0);
  EXPECT_DOUBLE_EQ(c.Max(), 0.0);
  EXPECT_EQ(c.DistinctCount(), 0u);
}

TEST(ColumnDeathTest, OutOfBoundsAccess) {
  Column c("x", ColumnType::kNumeric);
  c.Append(1.0);
  EXPECT_DEATH(c.SetValue(5, 0.0), "WARPER_CHECK");
  EXPECT_DEATH(c.Truncate(2), "WARPER_CHECK");
}

}  // namespace
}  // namespace warper::storage
