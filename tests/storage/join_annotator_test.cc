#include "storage/join_annotator.h"

#include <gtest/gtest.h>

#include "storage/datasets.h"
#include "util/rng.h"
#include "workload/join_workload.h"

namespace warper::storage {
namespace {

// Tiny hand-built star schema: center with 3 rows, one fact table.
struct TinyStar {
  Table center{"center"};
  Table fact{"fact"};
  StarSchema schema;

  TinyStar() {
    center.AddColumn("id", ColumnType::kNumeric);
    center.AddColumn("attr", ColumnType::kNumeric);
    center.AppendRow({0.0, 10.0});
    center.AppendRow({1.0, 20.0});
    center.AppendRow({2.0, 30.0});

    fact.AddColumn("fk", ColumnType::kNumeric);
    fact.AddColumn("v", ColumnType::kNumeric);
    // Key 0: 2 rows; key 1: 1 row; key 2: none.
    fact.AppendRow({0.0, 1.0});
    fact.AppendRow({0.0, 2.0});
    fact.AppendRow({1.0, 3.0});

    schema.center = &center;
    schema.center_pk_col = 0;
    schema.facts.push_back({&fact, 0});
  }
};

TEST(JoinAnnotatorTest, FullJoinCount) {
  TinyStar star;
  JoinAnnotator annotator(&star.schema);
  JoinQuery q;
  q.join_mask = 1;
  q.center_pred = RangePredicate::FullRange(star.center);
  q.fact_preds.push_back(RangePredicate::FullRange(star.fact));
  // key0: 1·2, key1: 1·1, key2: 1·0 → 3.
  EXPECT_EQ(annotator.Count(q), 3);
}

TEST(JoinAnnotatorTest, CenterPredicateFilters) {
  TinyStar star;
  JoinAnnotator annotator(&star.schema);
  JoinQuery q;
  q.join_mask = 1;
  q.center_pred = RangePredicate::FullRange(star.center);
  q.center_pred.low[1] = 15.0;  // keeps ids 1, 2
  q.fact_preds.push_back(RangePredicate::FullRange(star.fact));
  EXPECT_EQ(annotator.Count(q), 1);
}

TEST(JoinAnnotatorTest, FactPredicateFilters) {
  TinyStar star;
  JoinAnnotator annotator(&star.schema);
  JoinQuery q;
  q.join_mask = 1;
  q.center_pred = RangePredicate::FullRange(star.center);
  q.fact_preds.push_back(RangePredicate::FullRange(star.fact));
  q.fact_preds[0].low[1] = 2.0;  // keeps fact rows with v ≥ 2
  // key0: 1 row, key1: 1 row → 2.
  EXPECT_EQ(annotator.Count(q), 2);
}

TEST(JoinAnnotatorTest, NumJoinsCountsBits) {
  JoinQuery q;
  q.join_mask = 0b101;
  EXPECT_EQ(q.NumJoins(), 2u);
  q.join_mask = 0;
  EXPECT_EQ(q.NumJoins(), 0u);
}

// Cross-check against a brute-force nested-loop join on the IMDB-like data.
TEST(JoinAnnotatorTest, MatchesNestedLoopJoin) {
  ImdbTables tables = MakeImdb(300, /*seed=*/5);
  StarSchema schema = tables.Schema();
  JoinAnnotator annotator(&schema);
  util::Rng rng(7);
  std::vector<JoinQuery> queries =
      workload::GenerateJoinWorkload(schema, workload::GenMethod::kW1, 6, &rng);

  for (const JoinQuery& q : queries) {
    // Brute force: per center row, count matching rows per active fact.
    int64_t expected = 0;
    for (size_t cr = 0; cr < schema.center->NumRows(); ++cr) {
      if (!q.center_pred.Matches(*schema.center, cr)) continue;
      int64_t key = static_cast<int64_t>(
          schema.center->column(schema.center_pk_col).Value(cr));
      int64_t product = 1;
      for (size_t f = 0; f < schema.facts.size() && product > 0; ++f) {
        if (((q.join_mask >> f) & 1) == 0) continue;
        int64_t matches = 0;
        const Table& fact = *schema.facts[f].table;
        for (size_t fr = 0; fr < fact.NumRows(); ++fr) {
          if (static_cast<int64_t>(
                  fact.column(schema.facts[f].fk_col).Value(fr)) != key) {
            continue;
          }
          matches += q.fact_preds[f].Matches(fact, fr) ? 1 : 0;
        }
        product *= matches;
      }
      expected += product;
    }
    EXPECT_EQ(annotator.Count(q), expected);
  }
}

TEST(JoinAnnotatorTest, BatchMatchesIndividual) {
  ImdbTables tables = MakeImdb(200, /*seed=*/9);
  StarSchema schema = tables.Schema();
  JoinAnnotator annotator(&schema);
  util::Rng rng(11);
  std::vector<JoinQuery> queries =
      workload::GenerateJoinWorkload(schema, workload::GenMethod::kW3, 8, &rng);
  std::vector<int64_t> batch = annotator.BatchCount(queries);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(batch[i], annotator.Count(queries[i]));
  }
}

}  // namespace
}  // namespace warper::storage
