#include "storage/datasets.h"

#include <cmath>
#include <gtest/gtest.h>

namespace warper::storage {
namespace {

TEST(HiggsTest, SchemaMatchesTable4Shape) {
  Table t = MakeHiggs(5000, 1);
  EXPECT_EQ(t.NumRows(), 5000u);
  EXPECT_EQ(t.NumColumns(), 8u);  // 8 numeric, 0 categorical
  for (size_t c = 0; c < t.NumColumns(); ++c) {
    EXPECT_EQ(t.column(c).type(), ColumnType::kNumeric);
  }
  t.CheckRowAlignment();
}

TEST(HiggsTest, DistinctCountSpread) {
  Table t = MakeHiggs(10000, 2);
  // The b-tag column has exactly 3 levels (Table 4's min distinct = 3).
  EXPECT_EQ(t.column(t.ColumnIndex("jet1_btag").ValueOrDie()).DistinctCount(),
            3u);
  // Continuous columns have thousands of distinct values.
  EXPECT_GT(t.column(t.ColumnIndex("m_jj").ValueOrDie()).DistinctCount(),
            1000u);
}

TEST(HiggsTest, CorrelatedMassColumns) {
  Table t = MakeHiggs(20000, 3);
  size_t mjj = t.ColumnIndex("m_jj").ValueOrDie();
  size_t mwbb = t.ColumnIndex("m_wbb").ValueOrDie();
  // Pearson correlation between m_jj and m_wbb should be clearly positive.
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  double n = static_cast<double>(t.NumRows());
  for (size_t r = 0; r < t.NumRows(); ++r) {
    double x = t.column(mjj).Value(r);
    double y = t.column(mwbb).Value(r);
    sx += x;
    sy += y;
    sxx += x * x;
    syy += y * y;
    sxy += x * y;
  }
  double corr = (n * sxy - sx * sy) /
                std::sqrt((n * sxx - sx * sx) * (n * syy - sy * sy));
  EXPECT_GT(corr, 0.3);
}

TEST(PrsaTest, SchemaMatchesTable4Shape) {
  Table t = MakePrsa(4000, 1);
  EXPECT_EQ(t.NumColumns(), 8u);
  int categorical = 0;
  for (size_t c = 0; c < t.NumColumns(); ++c) {
    categorical += t.column(c).type() == ColumnType::kCategorical ? 1 : 0;
  }
  EXPECT_EQ(categorical, 2);
  EXPECT_EQ(t.column(t.ColumnIndex("year").ValueOrDie()).DistinctCount(), 5u);
  EXPECT_EQ(t.column(t.ColumnIndex("month").ValueOrDie()).DistinctCount(), 12u);
}

TEST(PrsaTest, PollutionSeasonality) {
  Table t = MakePrsa(30000, 2);
  size_t month = t.ColumnIndex("month").ValueOrDie();
  size_t pm25 = t.ColumnIndex("pm25").ValueOrDie();
  double winter_sum = 0, summer_sum = 0;
  int winter_n = 0, summer_n = 0;
  for (size_t r = 0; r < t.NumRows(); ++r) {
    double m = t.column(month).Value(r);
    if (m == 1 || m == 12) {
      winter_sum += t.column(pm25).Value(r);
      ++winter_n;
    } else if (m == 6 || m == 7) {
      summer_sum += t.column(pm25).Value(r);
      ++summer_n;
    }
  }
  EXPECT_GT(winter_sum / winter_n, summer_sum / summer_n);
}

TEST(PokerTest, SchemaMatchesTable4Shape) {
  Table t = MakePoker(5000, 1);
  EXPECT_EQ(t.NumColumns(), 11u);
  for (size_t c = 0; c < t.NumColumns(); ++c) {
    EXPECT_EQ(t.column(c).type(), ColumnType::kCategorical);
  }
  // Suits: 4 distinct; ranks: 13 distinct.
  EXPECT_EQ(t.column(0).DistinctCount(), 4u);
  EXPECT_EQ(t.column(1).DistinctCount(), 13u);
}

TEST(PokerTest, HandClassSkewedTowardNothing) {
  Table t = MakePoker(20000, 2);
  size_t hand = t.ColumnIndex("hand").ValueOrDie();
  int nothing = 0;
  for (size_t r = 0; r < t.NumRows(); ++r) {
    nothing += t.column(hand).Value(r) == 0.0 ? 1 : 0;
  }
  // "Nothing" + "one pair" dominate the real dataset; here nothing alone
  // should be the plurality class.
  EXPECT_GT(nothing, 6000);
}

TEST(TpchTest, JoinKeysAreConsistent) {
  TpchTables t = MakeTpch(500, 1);
  EXPECT_EQ(t.orders.NumRows(), 500u);
  EXPECT_GE(t.lineitem.NumRows(), 500u);   // ≥1 line per order
  EXPECT_LE(t.lineitem.NumRows(), 3500u);  // ≤7 lines per order
  // Every lineitem FK references an existing order.
  for (size_t r = 0; r < t.lineitem.NumRows(); ++r) {
    double fk = t.lineitem.column(t.lineitem_fk_col).Value(r);
    EXPECT_GE(fk, 0.0);
    EXPECT_LT(fk, 500.0);
  }
}

TEST(TpchTest, ShipdateAfterOrderdate) {
  TpchTables t = MakeTpch(200, 2);
  size_t shipdate = t.lineitem.ColumnIndex("l_shipdate").ValueOrDie();
  size_t orderdate = t.orders.ColumnIndex("o_orderdate").ValueOrDie();
  for (size_t r = 0; r < t.lineitem.NumRows(); ++r) {
    size_t order = static_cast<size_t>(
        t.lineitem.column(t.lineitem_fk_col).Value(r));
    EXPECT_GT(t.lineitem.column(shipdate).Value(r),
              t.orders.column(orderdate).Value(order));
  }
}

TEST(ImdbTest, StarSchemaWiring) {
  ImdbTables tables = MakeImdb(400, 1);
  StarSchema schema = tables.Schema();
  EXPECT_EQ(schema.center, &tables.title);
  ASSERT_EQ(schema.facts.size(), 2u);
  EXPECT_EQ(schema.facts[0].table, &tables.cast_info);
  EXPECT_EQ(schema.facts[1].table, &tables.movie_companies);
  // All FKs reference existing titles.
  for (size_t r = 0; r < tables.cast_info.NumRows(); ++r) {
    double fk = tables.cast_info.column(0).Value(r);
    EXPECT_GE(fk, 0.0);
    EXPECT_LT(fk, 400.0);
  }
}

TEST(ImdbTest, RecentYearsDominate) {
  ImdbTables tables = MakeImdb(3000, 2);
  size_t year_col = tables.title.ColumnIndex("production_year").ValueOrDie();
  int recent = 0;
  for (size_t r = 0; r < tables.title.NumRows(); ++r) {
    recent += tables.title.column(year_col).Value(r) >= 1990.0 ? 1 : 0;
  }
  EXPECT_GT(recent, 1500);
}

TEST(DatasetsTest, DeterministicForSeed) {
  Table a = MakePrsa(1000, 77);
  Table b = MakePrsa(1000, 77);
  for (size_t c = 0; c < a.NumColumns(); ++c) {
    EXPECT_EQ(a.column(c).values(), b.column(c).values());
  }
  Table c = MakePrsa(1000, 78);
  EXPECT_NE(a.column(3).values(), c.column(3).values());
}

}  // namespace
}  // namespace warper::storage
