#include "storage/annotator.h"

#include <gtest/gtest.h>

#include "storage/datasets.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace warper::storage {
namespace {

Table MakeGrid() {
  // 100 rows: a = i % 10, b = i / 10.
  Table t("grid");
  t.AddColumn("a", ColumnType::kNumeric);
  t.AddColumn("b", ColumnType::kNumeric);
  for (int i = 0; i < 100; ++i) {
    t.AppendRow({static_cast<double>(i % 10), static_cast<double>(i / 10)});
  }
  return t;
}

TEST(AnnotatorTest, FullRangeCountsAllRows) {
  Table t = MakeGrid();
  Annotator annotator(&t);
  EXPECT_EQ(annotator.Count(RangePredicate::FullRange(t)), 100);
}

TEST(AnnotatorTest, KnownSelectivity) {
  Table t = MakeGrid();
  Annotator annotator(&t);
  RangePredicate p = RangePredicate::FullRange(t);
  p.low[0] = 0.0;
  p.high[0] = 4.0;  // half of a-values
  EXPECT_EQ(annotator.Count(p), 50);
  p.low[1] = 0.0;
  p.high[1] = 1.0;  // 2 of 10 b-values
  EXPECT_EQ(annotator.Count(p), 10);
}

TEST(AnnotatorTest, EmptyRange) {
  Table t = MakeGrid();
  Annotator annotator(&t);
  RangePredicate p = RangePredicate::FullRange(t);
  p.low[0] = 3.5;
  p.high[0] = 3.9;  // between integer values
  EXPECT_EQ(annotator.Count(p), 0);
}

TEST(AnnotatorTest, BatchMatchesIndividualCounts) {
  Table t = MakePrsa(5000, /*seed=*/11);
  Annotator annotator(&t);
  util::Rng rng(13);
  std::vector<RangePredicate> preds = workload::GenerateWorkload(
      t, {workload::GenMethod::kW1, workload::GenMethod::kW3}, 40, &rng);
  std::vector<int64_t> batch = annotator.BatchCount(preds);
  ASSERT_EQ(batch.size(), preds.size());
  for (size_t i = 0; i < preds.size(); ++i) {
    EXPECT_EQ(batch[i], annotator.Count(preds[i])) << "predicate " << i;
  }
}

TEST(AnnotatorTest, CountsAnnotations) {
  Table t = MakeGrid();
  Annotator annotator(&t);
  annotator.Count(RangePredicate::FullRange(t));
  annotator.BatchCount({RangePredicate::FullRange(t),
                        RangePredicate::FullRange(t)});
  EXPECT_EQ(annotator.annotations(), 3);
}

TEST(AnnotatorTest, CpuAccountingAccumulates) {
  Table t = MakePrsa(20000, /*seed=*/17);
  util::CpuAccumulator cpu;
  Annotator annotator(&t, &cpu);
  annotator.Count(RangePredicate::FullRange(t));
  EXPECT_GT(cpu.TotalSeconds(), 0.0);
}

// Property: the batch scan agrees with a naive per-row evaluation on every
// generator method.
class AnnotatorMethodSweep
    : public ::testing::TestWithParam<workload::GenMethod> {};

TEST_P(AnnotatorMethodSweep, MatchesBruteForce) {
  Table t = MakeHiggs(3000, /*seed=*/23);
  Annotator annotator(&t);
  util::Rng rng(29);
  std::vector<RangePredicate> preds =
      workload::GenerateWorkload(t, {GetParam()}, 10, &rng);
  std::vector<int64_t> counts = annotator.BatchCount(preds);
  for (size_t p = 0; p < preds.size(); ++p) {
    int64_t brute = 0;
    for (size_t r = 0; r < t.NumRows(); ++r) {
      brute += preds[p].Matches(t, r) ? 1 : 0;
    }
    EXPECT_EQ(counts[p], brute);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Methods, AnnotatorMethodSweep,
    ::testing::Values(workload::GenMethod::kW1, workload::GenMethod::kW2,
                      workload::GenMethod::kW3, workload::GenMethod::kW4,
                      workload::GenMethod::kW5));

}  // namespace
}  // namespace warper::storage
