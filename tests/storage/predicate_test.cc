#include "storage/predicate.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace warper::storage {
namespace {

Table MakeTable() {
  Table t("t");
  t.AddColumn("a", ColumnType::kNumeric);   // domain [0, 10]
  t.AddColumn("b", ColumnType::kNumeric);   // domain [100, 200]
  for (int i = 0; i <= 10; ++i) {
    t.AppendRow({static_cast<double>(i), 100.0 + 10.0 * i});
  }
  return t;
}

TEST(PredicateTest, FullRangeMatchesEverything) {
  Table t = MakeTable();
  RangePredicate p = RangePredicate::FullRange(t);
  for (size_t r = 0; r < t.NumRows(); ++r) EXPECT_TRUE(p.Matches(t, r));
  EXPECT_FALSE(p.Constrains(t, 0));
  EXPECT_FALSE(p.Constrains(t, 1));
}

TEST(PredicateTest, RangeCheckInclusive) {
  Table t = MakeTable();
  RangePredicate p = RangePredicate::FullRange(t);
  p.low[0] = 3.0;
  p.high[0] = 5.0;
  EXPECT_FALSE(p.Matches(t, 2));  // a=2
  EXPECT_TRUE(p.Matches(t, 3));   // a=3 (inclusive low)
  EXPECT_TRUE(p.Matches(t, 5));   // a=5 (inclusive high)
  EXPECT_FALSE(p.Matches(t, 6));
  EXPECT_TRUE(p.Constrains(t, 0));
}

TEST(PredicateTest, EqualityAsDegenerateRange) {
  Table t = MakeTable();
  RangePredicate p = RangePredicate::FullRange(t);
  p.low[0] = p.high[0] = 7.0;
  int matches = 0;
  for (size_t r = 0; r < t.NumRows(); ++r) matches += p.Matches(t, r) ? 1 : 0;
  EXPECT_EQ(matches, 1);
}

TEST(PredicateTest, CanonicalizeFixesInvertedBounds) {
  Table t = MakeTable();
  RangePredicate p = RangePredicate::FullRange(t);
  p.low[0] = 8.0;
  p.high[0] = 2.0;
  p.Canonicalize(t);
  EXPECT_DOUBLE_EQ(p.low[0], 2.0);
  EXPECT_DOUBLE_EQ(p.high[0], 8.0);
}

TEST(PredicateTest, CanonicalizeClampsToDomain) {
  Table t = MakeTable();
  RangePredicate p = RangePredicate::FullRange(t);
  p.low[1] = -50.0;
  p.high[1] = 500.0;
  p.Canonicalize(t);
  EXPECT_DOUBLE_EQ(p.low[1], 100.0);
  EXPECT_DOUBLE_EQ(p.high[1], 200.0);
}

TEST(PredicateTest, FeaturizeNormalizesToUnit) {
  Table t = MakeTable();
  RangePredicate p = RangePredicate::FullRange(t);
  p.low[0] = 2.5;
  p.high[0] = 7.5;
  std::vector<double> f = p.Featurize(t);
  ASSERT_EQ(f.size(), 4u);
  EXPECT_DOUBLE_EQ(f[0], 0.25);  // low_a
  EXPECT_DOUBLE_EQ(f[1], 0.0);   // low_b (full range)
  EXPECT_DOUBLE_EQ(f[2], 0.75);  // high_a
  EXPECT_DOUBLE_EQ(f[3], 1.0);   // high_b
}

TEST(PredicateTest, FeaturizeRoundTrip) {
  Table t = MakeTable();
  util::Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    RangePredicate p = RangePredicate::FullRange(t);
    for (size_t c = 0; c < 2; ++c) {
      double a = rng.Uniform(t.column(c).Min(), t.column(c).Max());
      double b = rng.Uniform(t.column(c).Min(), t.column(c).Max());
      p.low[c] = std::min(a, b);
      p.high[c] = std::max(a, b);
    }
    RangePredicate q = RangePredicate::FromFeatures(t, p.Featurize(t));
    for (size_t c = 0; c < 2; ++c) {
      EXPECT_NEAR(q.low[c], p.low[c], 1e-9);
      EXPECT_NEAR(q.high[c], p.high[c], 1e-9);
    }
  }
}

TEST(PredicateTest, FromFeaturesRepairsNoisyVector) {
  Table t = MakeTable();
  // Out-of-range and inverted feature values.
  RangePredicate p = RangePredicate::FromFeatures(t, {1.4, 0.8, -0.3, 0.2});
  EXPECT_LE(p.low[0], p.high[0]);
  EXPECT_LE(p.low[1], p.high[1]);
  EXPECT_GE(p.low[0], t.column(0).Min());
  EXPECT_LE(p.high[0], t.column(0).Max());
}

TEST(PredicateTest, ConstantColumnFeaturization) {
  Table t("t");
  t.AddColumn("c", ColumnType::kNumeric);
  t.AppendRow({5.0});
  t.AppendRow({5.0});
  RangePredicate p = RangePredicate::FullRange(t);
  std::vector<double> f = p.Featurize(t);
  EXPECT_DOUBLE_EQ(f[0], 0.0);
  EXPECT_DOUBLE_EQ(f[1], 1.0);
  // Decoding must not produce NaNs.
  RangePredicate q = RangePredicate::FromFeatures(t, f);
  EXPECT_DOUBLE_EQ(q.low[0], 5.0);
  EXPECT_DOUBLE_EQ(q.high[0], 5.0);
}

}  // namespace
}  // namespace warper::storage
