// Parity suite for the fused annotation engine: SIMD + zone maps + fused
// per-block evaluation must produce counts EXACTLY equal to the seed scalar
// row-at-a-time scan — integer-exact, no tolerance — across adversarial
// predicates and drift-mutated tables, on every kernel path.
#include "storage/annotate_engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "storage/annotate_kernels.h"
#include "storage/annotator.h"
#include "storage/data_drift.h"
#include "storage/datasets.h"
#include "storage/parallel_annotator.h"
#include "storage/predicate.h"
#include "storage/table.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace warper::storage {
namespace {

// The seed implementation, verbatim: per-row all-predicates over only the
// constrained columns, with the early-exit inner loop. This is the ground
// truth every engine path must reproduce bit for bit.
std::vector<int64_t> SeedBatchCount(const Table& table,
                                    const std::vector<RangePredicate>& preds) {
  struct Compiled {
    std::vector<size_t> cols;
    std::vector<double> low, high;
  };
  std::vector<Compiled> compiled;
  for (const RangePredicate& pred : preds) {
    Compiled cp;
    for (size_t c = 0; c < pred.NumColumns(); ++c) {
      if (pred.Constrains(table, c)) {
        cp.cols.push_back(c);
        cp.low.push_back(pred.low[c]);
        cp.high.push_back(pred.high[c]);
      }
    }
    compiled.push_back(std::move(cp));
  }
  std::vector<int64_t> counts(preds.size(), 0);
  for (size_t r = 0; r < table.NumRows(); ++r) {
    for (size_t p = 0; p < compiled.size(); ++p) {
      const Compiled& cp = compiled[p];
      bool match = true;
      for (size_t i = 0; i < cp.cols.size(); ++i) {
        double v = table.column(cp.cols[i]).Value(r);
        if (v < cp.low[i] || v > cp.high[i]) {
          match = false;
          break;
        }
      }
      counts[p] += match ? 1 : 0;
    }
  }
  return counts;
}

// Runs one compiled batch through a specific kernel table.
std::vector<int64_t> EngineCount(const Table& table,
                                 const std::vector<RangePredicate>& preds,
                                 const internal::AnnotateKernelTable& kernels,
                                 internal::AnnotateStats* stats = nullptr) {
  internal::CompiledBatch batch(table, preds);
  std::vector<int64_t> counts(preds.size(), 0);
  internal::FusedCount(batch, kernels, 0, table.NumRows(), counts.data(),
                       stats);
  return counts;
}

// Every kernel path the binary ships (the AVX2 table aliases scalar when
// not compiled, so listing it is always safe; on AVX2 hardware it is the
// real SIMD path).
std::vector<const internal::AnnotateKernelTable*> AllKernelTables() {
  return {&internal::ScalarAnnotateKernels(), &internal::Avx2AnnotateKernels()};
}

void ExpectParity(const Table& table,
                  const std::vector<RangePredicate>& preds,
                  const char* what) {
  std::vector<int64_t> want = SeedBatchCount(table, preds);
  for (const internal::AnnotateKernelTable* kernels : AllKernelTables()) {
    EXPECT_EQ(EngineCount(table, preds, *kernels), want)
        << what << " via " << kernels->name;
  }
  // The public entry points: serial annotator (active kernels), parallel
  // fused pass under deterministic=true (kAuto) and pinned-scalar configs.
  Annotator serial(&table);
  EXPECT_EQ(serial.BatchCount(preds), want) << what << " via Annotator";
  util::ParallelConfig det;
  det.threads = 4;
  det.deterministic = true;
  EXPECT_EQ(ParallelAnnotator(&table, det).BatchCount(preds), want)
      << what << " via ParallelAnnotator(deterministic)";
  util::ParallelConfig scalar = det;
  scalar.simd = util::SimdMode::kScalar;
  EXPECT_EQ(ParallelAnnotator(&table, scalar).BatchCount(preds), want)
      << what << " via ParallelAnnotator(simd=scalar)";
}

// Adversarial predicate set for `table`: equality bounds (low == high),
// domain-edge bounds, fully unconstrained, empty ranges between values, and
// a random workload mix.
std::vector<RangePredicate> AdversarialPreds(const Table& table,
                                             util::Rng* rng) {
  std::vector<RangePredicate> preds;
  preds.push_back(RangePredicate::FullRange(table));  // unconstrained
  for (size_t c = 0; c < table.NumColumns(); ++c) {
    double lo = table.column(c).Min();
    double hi = table.column(c).Max();
    // Equality at a value drawn from the table.
    RangePredicate eq = RangePredicate::FullRange(table);
    double v = table.column(c).Value(
        rng->UniformInt(0, static_cast<int>(table.NumRows()) - 1));
    eq.low[c] = eq.high[c] = v;
    preds.push_back(eq);
    // Domain-edge slivers: [min, min] and [max, max].
    RangePredicate lo_edge = RangePredicate::FullRange(table);
    lo_edge.low[c] = lo_edge.high[c] = lo;
    preds.push_back(lo_edge);
    RangePredicate hi_edge = RangePredicate::FullRange(table);
    hi_edge.low[c] = hi_edge.high[c] = hi;
    preds.push_back(hi_edge);
    // An empty range strictly inside the domain.
    RangePredicate empty = RangePredicate::FullRange(table);
    empty.low[c] = lo + 0.37 * (hi - lo);
    empty.high[c] = empty.low[c] - 1e-9 * (hi - lo + 1.0);
    preds.push_back(empty);
  }
  std::vector<RangePredicate> mix = workload::GenerateWorkload(
      table, {workload::GenMethod::kW1, workload::GenMethod::kW3,
              workload::GenMethod::kW5},
      40, rng);
  preds.insert(preds.end(), mix.begin(), mix.end());
  return preds;
}

TEST(AnnotateEngineTest, ParityOnHiggs) {
  // 10'000 rows: two full zone blocks plus a partial tail block.
  Table t = MakeHiggs(10000, 101);
  util::Rng rng(101);
  ExpectParity(t, AdversarialPreds(t, &rng), "higgs");
}

TEST(AnnotateEngineTest, ParityOnCategoricalPoker) {
  Table t = MakePoker(6000, 103);
  util::Rng rng(103);
  ExpectParity(t, AdversarialPreds(t, &rng), "poker");
}

TEST(AnnotateEngineTest, ParityAfterDataDrift) {
  Table t = MakePrsa(9000, 107);
  util::Rng rng(107);
  // Drifted appends dirty only the tail blocks; counts must stay exact.
  AppendShiftedRows(&t, 0.35, 0.25, &rng);
  ExpectParity(t, AdversarialPreds(t, &rng), "prsa+append");
  // In-place updates widen + stale the touched blocks.
  UpdateRandomRows(&t, 0.10, &rng);
  ExpectParity(t, AdversarialPreds(t, &rng), "prsa+update");
  // The paper's c1 drift: sort (SetValue on every row) + truncate to half,
  // leaving a partial tail block and stale entries everywhere.
  SortTruncateHalf(&t, 1);
  ExpectParity(t, AdversarialPreds(t, &rng), "prsa+sort_truncate");
}

TEST(AnnotateEngineTest, ParityOnSubBlockTable) {
  // Smaller than one zone block and not a multiple of 64 (ragged mask tail).
  Table t = MakeHiggs(777, 109);
  util::Rng rng(109);
  ExpectParity(t, AdversarialPreds(t, &rng), "sub-block");
}

TEST(AnnotateEngineTest, NanRowsMatchEveryRange) {
  // NaN satisfies !(v < lo) && !(v > hi), so the seed scan counts it; the
  // zone map must therefore never prune a NaN block.
  Table t("nan");
  t.AddColumn("a", ColumnType::kNumeric);
  t.AddColumn("b", ColumnType::kNumeric);
  util::Rng rng(113);
  for (int i = 0; i < 5000; ++i) {
    double a = rng.Uniform() * 100.0;
    double b = (i % 97 == 0) ? std::numeric_limits<double>::quiet_NaN()
                             : rng.Uniform() * 10.0;
    t.AppendRow({a, b});
  }
  std::vector<RangePredicate> preds;
  RangePredicate p = RangePredicate::FullRange(t);
  p.low[0] = 10.0;
  p.high[0] = 20.0;
  p.low[1] = 2.0;
  p.high[1] = 3.0;
  preds.push_back(p);
  ExpectParity(t, preds, "nan");
}

TEST(AnnotateEngineTest, ZoneMapPrunesClusteredColumn) {
  // Sorted (clustered) column: a narrow range predicate rejects almost
  // every block outright and fully covers the interior of its own range.
  Table t = MakeHiggs(50000, 127);
  t.SortByColumn(0);
  RangePredicate p = RangePredicate::FullRange(t);
  double lo = t.column(0).Min(), hi = t.column(0).Max();
  p.low[0] = lo + 0.40 * (hi - lo);
  p.high[0] = lo + 0.42 * (hi - lo);
  internal::AnnotateStats stats;
  std::vector<int64_t> got =
      EngineCount(t, {p}, internal::ScalarAnnotateKernels(), &stats);
  EXPECT_EQ(got, SeedBatchCount(t, {p}));
  size_t blocks = (t.NumRows() + Column::kZoneBlockRows - 1) /
                  Column::kZoneBlockRows;
  EXPECT_GT(stats.blocks_pruned, 0);
  EXPECT_LT(static_cast<size_t>(stats.rows_scanned),
            t.NumRows());  // most blocks skipped
  EXPECT_LE(stats.blocks_pruned + stats.blocks_shortcircuited,
            static_cast<int64_t>(blocks));
}

TEST(AnnotateEngineTest, FullRangeShortCircuitsWithoutTouchingRows) {
  Table t = MakeHiggs(20000, 131);
  // Constrained on one column but spanning (almost) the whole domain except
  // a hair at the top: interior blocks short-circuit.
  t.SortByColumn(2);
  RangePredicate p = RangePredicate::FullRange(t);
  double lo = t.column(2).Min(), hi = t.column(2).Max();
  p.high[2] = lo + 0.99 * (hi - lo);
  internal::AnnotateStats stats;
  std::vector<int64_t> got =
      EngineCount(t, {p}, internal::ScalarAnnotateKernels(), &stats);
  EXPECT_EQ(got, SeedBatchCount(t, {p}));
  EXPECT_GT(stats.blocks_shortcircuited, 0);
}

TEST(AnnotateEngineTest, CountIsABatchOfOne) {
  // Single-predicate and batched annotation share one code path; spot-check
  // the delegation end to end.
  Table t = MakePrsa(4000, 137);
  util::Rng rng(137);
  Annotator annotator(&t);
  std::vector<RangePredicate> preds = AdversarialPreds(t, &rng);
  std::vector<int64_t> batch = annotator.BatchCount(preds);
  for (size_t i = 0; i < preds.size(); ++i) {
    EXPECT_EQ(annotator.Count(preds[i]), batch[i]) << "predicate " << i;
  }
}

TEST(AnnotateEngineTest, PredicateMaskMatchesRowScan) {
  Table t = MakeHiggs(10000, 139);
  util::Rng rng(139);
  std::vector<RangePredicate> preds = AdversarialPreds(t, &rng);
  internal::CompiledBatch batch(t, preds);
  std::vector<uint64_t> mask((t.NumRows() + 63) / 64);
  for (const internal::AnnotateKernelTable* kernels : AllKernelTables()) {
    for (size_t p = 0; p < preds.size(); ++p) {
      internal::PredicateMask(batch, p, *kernels, mask.data(), nullptr);
      for (size_t r = 0; r < t.NumRows(); ++r) {
        bool want = true;
        for (size_t i = 0; i < batch.preds()[p].cols.size(); ++i) {
          double v = t.column(batch.preds()[p].cols[i]).Value(r);
          if (v < batch.preds()[p].low[i] || v > batch.preds()[p].high[i]) {
            want = false;
            break;
          }
        }
        bool got = (mask[r / 64] >> (r % 64)) & 1;
        ASSERT_EQ(got, want)
            << "pred " << p << " row " << r << " via " << kernels->name;
      }
      // Bits past NumRows stay zero (popcount safety).
      if (t.NumRows() % 64 != 0) {
        EXPECT_EQ(mask.back() >> (t.NumRows() % 64), 0u);
      }
    }
  }
}

TEST(AnnotateEngineTest, ColumnZoneEntriesAreTight) {
  Table t = MakePrsa(9500, 149);
  util::Rng rng(149);
  AppendShiftedRows(&t, 0.2, 0.3, &rng);
  UpdateRandomRows(&t, 0.05, &rng);
  t.Truncate(t.NumRows() - 137);
  for (size_t c = 0; c < t.NumColumns(); ++c) {
    const Column& col = t.column(c);
    col.EnsureZoneMapFresh();
    ASSERT_EQ(col.NumZoneBlocks(),
              (col.size() + Column::kZoneBlockRows - 1) /
                  Column::kZoneBlockRows);
    for (size_t b = 0; b < col.NumZoneBlocks(); ++b) {
      size_t begin = b * Column::kZoneBlockRows;
      size_t end = std::min(col.size(), begin + Column::kZoneBlockRows);
      double lo = col.Value(begin), hi = col.Value(begin);
      for (size_t r = begin; r < end; ++r) {
        lo = std::min(lo, col.Value(r));
        hi = std::max(hi, col.Value(r));
      }
      EXPECT_EQ(col.zone_entries()[b].min, lo) << "col " << c << " block " << b;
      EXPECT_EQ(col.zone_entries()[b].max, hi) << "col " << c << " block " << b;
      EXPECT_FALSE(col.zone_entries()[b].stale);
    }
  }
}

TEST(AnnotateEngineTest, ColumnStatsIncrementalOnAppend) {
  Column col("c", ColumnType::kNumeric);
  col.Append(5.0);
  EXPECT_EQ(col.Min(), 5.0);
  EXPECT_EQ(col.Max(), 5.0);
  // Appends after a Min()/Max() read must not require a rescan to stay
  // correct (running update).
  col.Append(2.0);
  col.Append(9.0);
  EXPECT_EQ(col.Min(), 2.0);
  EXPECT_EQ(col.Max(), 9.0);
  EXPECT_EQ(col.DistinctCount(), 3u);
  // SetValue invalidates; the rescan path must agree.
  col.SetValue(1, 7.0);
  EXPECT_EQ(col.Min(), 5.0);
  EXPECT_EQ(col.Max(), 9.0);
  EXPECT_EQ(col.DistinctCount(), 3u);
  col.Truncate(2);
  EXPECT_EQ(col.Min(), 5.0);
  EXPECT_EQ(col.Max(), 7.0);
  EXPECT_EQ(col.DistinctCount(), 2u);
}

// TSan target: the fused parallel pass — pool workers concurrently reading
// the compiled batch, column values and (pre-freshened) zone maps while
// merging chunk tallies — must be clean under drift-mutated zone state.
TEST(AnnotateEngineTest, ParallelFusedPassAfterDriftIsRaceFree) {
  Table t = MakeHiggs(60000, 151);
  util::Rng rng(151);
  AppendShiftedRows(&t, 0.25, 0.4, &rng);
  std::vector<RangePredicate> preds = workload::GenerateWorkload(
      t, {workload::GenMethod::kW2, workload::GenMethod::kW4}, 64, &rng);
  util::ParallelConfig config;
  config.threads = 0;  // whole pool
  ParallelAnnotator parallel(&t, config);
  std::vector<int64_t> want = SeedBatchCount(t, preds);
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(parallel.BatchCount(preds), want);
  }
}

}  // namespace
}  // namespace warper::storage
