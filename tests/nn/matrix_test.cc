#include "nn/matrix.h"

#include <cmath>
#include <gtest/gtest.h>

#include "util/rng.h"

namespace warper::nn {
namespace {

TEST(MatrixTest, ConstructionAndFill) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m.At(r, c), 1.5);
  }
}

TEST(MatrixTest, FromRows) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_DOUBLE_EQ(m.At(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.At(1, 0), 3.0);
}

TEST(MatrixTest, RowRoundTrip) {
  Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.Row(1), (std::vector<double>{4, 5, 6}));
  m.SetRow(0, {7, 8, 9});
  EXPECT_EQ(m.Row(0), (std::vector<double>{7, 8, 9}));
}

TEST(MatrixTest, MatMulKnownResult) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  Matrix c = a.MatMul(b);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 50.0);
}

TEST(MatrixTest, MatMulNonSquare) {
  Matrix a = Matrix::FromRows({{1, 2, 3}});       // 1x3
  Matrix b = Matrix::FromRows({{1}, {2}, {3}});   // 3x1
  Matrix c = a.MatMul(b);
  EXPECT_EQ(c.rows(), 1u);
  EXPECT_EQ(c.cols(), 1u);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 14.0);
}

TEST(MatrixTest, TransposeMatMulMatchesExplicit) {
  util::Rng rng(3);
  Matrix a(4, 3);
  Matrix b(4, 2);
  for (double& v : a.data()) v = rng.Normal();
  for (double& v : b.data()) v = rng.Normal();
  Matrix expected = a.Transposed().MatMul(b);
  Matrix got = a.TransposeMatMul(b);
  ASSERT_EQ(got.rows(), expected.rows());
  ASSERT_EQ(got.cols(), expected.cols());
  for (size_t i = 0; i < got.data().size(); ++i) {
    EXPECT_NEAR(got.data()[i], expected.data()[i], 1e-12);
  }
}

TEST(MatrixTest, MatMulTransposeMatchesExplicit) {
  util::Rng rng(5);
  Matrix a(3, 4);
  Matrix b(2, 4);
  for (double& v : a.data()) v = rng.Normal();
  for (double& v : b.data()) v = rng.Normal();
  Matrix expected = a.MatMul(b.Transposed());
  Matrix got = a.MatMulTranspose(b);
  for (size_t i = 0; i < got.data().size(); ++i) {
    EXPECT_NEAR(got.data()[i], expected.data()[i], 1e-12);
  }
}

TEST(MatrixTest, TransposedTwiceIsIdentity) {
  Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  Matrix t = a.Transposed().Transposed();
  EXPECT_EQ(t.data(), a.data());
}

TEST(MatrixTest, ElementwiseOps) {
  Matrix a = Matrix::FromRows({{1, 2}});
  Matrix b = Matrix::FromRows({{3, 4}});
  a.Add(b);
  EXPECT_EQ(a.Row(0), (std::vector<double>{4, 6}));
  a.Sub(b);
  EXPECT_EQ(a.Row(0), (std::vector<double>{1, 2}));
  a.MulElem(b);
  EXPECT_EQ(a.Row(0), (std::vector<double>{3, 8}));
  a.Scale(0.5);
  EXPECT_EQ(a.Row(0), (std::vector<double>{1.5, 4}));
}

TEST(MatrixTest, AddRowBroadcast) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  a.AddRowBroadcast({10, 20});
  EXPECT_EQ(a.Row(0), (std::vector<double>{11, 22}));
  EXPECT_EQ(a.Row(1), (std::vector<double>{13, 24}));
}

TEST(MatrixTest, ColumnSums) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_EQ(a.ColumnSums(), (std::vector<double>{4, 6}));
}

TEST(MatrixTest, SquaredNorm) {
  Matrix a = Matrix::FromRows({{3, 4}});
  EXPECT_DOUBLE_EQ(a.SquaredNorm(), 25.0);
}

TEST(MatrixTest, XavierBounded) {
  util::Rng rng(7);
  Matrix m = Matrix::Xavier(64, 64, &rng);
  double limit = std::sqrt(6.0 / 128.0);
  for (double v : m.data()) {
    EXPECT_GE(v, -limit);
    EXPECT_LE(v, limit);
  }
  // Should not be all zeros.
  EXPECT_GT(m.SquaredNorm(), 0.0);
}

TEST(MatrixDeathTest, ShapeMismatchChecks) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_DEATH(a.MatMul(b), "MatMul shape mismatch");
  Matrix c(3, 2);
  EXPECT_DEATH(a.Add(c), "WARPER_CHECK");
}

}  // namespace
}  // namespace warper::nn
