// The parallel matrix kernels must be bit-identical to their serial
// counterparts: they split *output rows* across the pool while keeping the
// per-element accumulation order unchanged, so equality is exact, not
// approximate.
#include <gtest/gtest.h>

#include "nn/matrix.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace warper::nn {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, util::Rng* rng) {
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      m.At(r, c) = rng->Uniform() * 2.0 - 1.0;
    }
  }
  return m;
}

// Installs a serial / parallel kernel policy for the duration of a test and
// restores the serial default afterwards.
class MatrixParallelTest : public ::testing::Test {
 protected:
  void TearDown() override {
    util::ParallelConfig serial;
    serial.threads = 1;
    SetMatrixParallelism(serial);
  }

  static void UseSerial() {
    util::ParallelConfig config;
    config.threads = 1;
    SetMatrixParallelism(config);
  }

  static void UseParallel(int threads) {
    util::ParallelConfig config;
    config.threads = threads;
    util::ThreadPool::Configure(config);
    SetMatrixParallelism(config);
  }
};

TEST_F(MatrixParallelTest, PolicyReflectsConfig) {
  UseParallel(4);
  EXPECT_EQ(matrix_parallel_policy().threads, 4);
  UseSerial();
  EXPECT_EQ(matrix_parallel_policy().threads, 1);
}

// Shapes large enough to clear the min_madds threshold so the parallel path
// actually runs (128·96·64 ≈ 786k madds > 2^17).
TEST_F(MatrixParallelTest, MatMulBitIdentical) {
  util::Rng rng(7);
  Matrix a = RandomMatrix(128, 96, &rng);
  Matrix b = RandomMatrix(96, 64, &rng);

  UseSerial();
  Matrix expected = a.MatMul(b);
  UseParallel(4);
  Matrix actual = a.MatMul(b);
  EXPECT_EQ(actual.data(), expected.data());
}

TEST_F(MatrixParallelTest, TransposeMatMulBitIdentical) {
  util::Rng rng(8);
  Matrix a = RandomMatrix(96, 128, &rng);
  Matrix b = RandomMatrix(96, 64, &rng);

  UseSerial();
  Matrix expected = a.TransposeMatMul(b);
  UseParallel(4);
  Matrix actual = a.TransposeMatMul(b);
  EXPECT_EQ(actual.data(), expected.data());
}

TEST_F(MatrixParallelTest, MatMulTransposeBitIdentical) {
  util::Rng rng(9);
  Matrix a = RandomMatrix(128, 96, &rng);
  Matrix b = RandomMatrix(64, 96, &rng);

  UseSerial();
  Matrix expected = a.MatMulTranspose(b);
  UseParallel(4);
  Matrix actual = a.MatMulTranspose(b);
  EXPECT_EQ(actual.data(), expected.data());
}

TEST_F(MatrixParallelTest, RepeatedParallelRunsAreStable) {
  util::Rng rng(10);
  Matrix a = RandomMatrix(128, 96, &rng);
  Matrix b = RandomMatrix(96, 64, &rng);

  UseParallel(4);
  Matrix first = a.MatMul(b);
  for (int run = 0; run < 3; ++run) {
    Matrix again = a.MatMul(b);
    EXPECT_EQ(again.data(), first.data());
  }
}

TEST_F(MatrixParallelTest, SmallProductsStaySerialAndCorrect) {
  util::Rng rng(11);
  // 8·8·8 madds sit far below min_madds: the parallel policy must fall back
  // to the serial kernel and still produce the same result.
  Matrix a = RandomMatrix(8, 8, &rng);
  Matrix b = RandomMatrix(8, 8, &rng);

  UseSerial();
  Matrix expected = a.MatMul(b);
  UseParallel(4);
  Matrix actual = a.MatMul(b);
  EXPECT_EQ(actual.data(), expected.data());
}

}  // namespace
}  // namespace warper::nn
