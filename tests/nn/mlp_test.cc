#include "nn/mlp.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/losses.h"
#include "util/rng.h"

namespace warper::nn {
namespace {

MlpConfig SmallConfig(Activation hidden, Activation output) {
  MlpConfig config;
  config.layer_sizes = {3, 5, 2};
  config.hidden_activation = hidden;
  config.output_activation = output;
  return config;
}

TEST(MlpTest, ShapesAndParameterCount) {
  util::Rng rng(1);
  Mlp mlp(SmallConfig(Activation::kLeakyRelu, Activation::kIdentity), &rng);
  EXPECT_EQ(mlp.input_size(), 3u);
  EXPECT_EQ(mlp.output_size(), 2u);
  // (3·5 + 5) + (5·2 + 2) = 32.
  EXPECT_EQ(mlp.ParameterCount(), 32u);
}

TEST(MlpTest, ForwardAndPredictAgree) {
  util::Rng rng(2);
  Mlp mlp(SmallConfig(Activation::kLeakyRelu, Activation::kIdentity), &rng);
  Matrix x = Matrix::FromRows({{0.1, -0.2, 0.3}, {1.0, 0.5, -1.0}});
  Matrix a = mlp.Forward(x);
  Matrix b = mlp.Predict(x);
  ASSERT_EQ(a.rows(), b.rows());
  for (size_t i = 0; i < a.data().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.data()[i], b.data()[i]);
  }
}

TEST(MlpTest, GetSetParametersRoundTrip) {
  util::Rng rng(3);
  Mlp mlp(SmallConfig(Activation::kRelu, Activation::kIdentity), &rng);
  std::vector<double> params = mlp.GetParameters();
  std::vector<double> doubled = params;
  for (double& p : doubled) p *= 2.0;
  mlp.SetParameters(doubled);
  EXPECT_EQ(mlp.GetParameters(), doubled);
  mlp.SetParameters(params);
  EXPECT_EQ(mlp.GetParameters(), params);
}

TEST(MlpTest, SigmoidOutputBounded) {
  util::Rng rng(4);
  Mlp mlp(SmallConfig(Activation::kLeakyRelu, Activation::kSigmoid), &rng);
  Matrix x = Matrix::FromRows({{100.0, -100.0, 50.0}});
  Matrix y = mlp.Predict(x);
  for (double v : y.data()) {
    EXPECT_GT(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

// The critical correctness test: analytic parameter gradients must match
// finite differences, for every activation combination used in the library.
class MlpGradientCheck
    : public ::testing::TestWithParam<std::pair<Activation, Activation>> {};

TEST_P(MlpGradientCheck, ParameterGradientsMatchFiniteDifference) {
  auto [hidden, output] = GetParam();
  util::Rng rng(11);
  Mlp mlp(SmallConfig(hidden, output), &rng);
  Matrix x = Matrix::FromRows({{0.3, -0.7, 0.2}, {0.9, 0.1, -0.4}});
  Matrix target = Matrix::FromRows({{0.5, -0.5}, {0.1, 0.7}});

  auto loss_at = [&](const std::vector<double>& params) {
    Mlp probe(SmallConfig(hidden, output), &rng);
    probe.SetParameters(params);
    Matrix grad;
    return MseLoss(probe.Predict(x), target, &grad);
  };

  mlp.ZeroGrad();
  Matrix pred = mlp.Forward(x);
  Matrix loss_grad;
  MseLoss(pred, target, &loss_grad);
  mlp.Backward(loss_grad);

  // Extract analytic gradients by stepping each parameter with SGD lr = 1
  // and diffing: θ' = θ - g  ⇒  g = θ - θ'.
  std::vector<double> before = mlp.GetParameters();
  OptimizerConfig sgd;
  sgd.kind = OptimizerKind::kSgd;
  mlp.Step(sgd, 1.0);
  std::vector<double> after = mlp.GetParameters();

  constexpr double kEps = 1e-6;
  int checked = 0;
  for (size_t i = 0; i < before.size(); i += 3) {  // spot-check every 3rd
    double analytic = before[i] - after[i];
    std::vector<double> plus = before, minus = before;
    plus[i] += kEps;
    minus[i] -= kEps;
    double numeric = (loss_at(plus) - loss_at(minus)) / (2 * kEps);
    EXPECT_NEAR(analytic, numeric, 1e-4) << "param " << i;
    ++checked;
  }
  EXPECT_GT(checked, 5);
}

INSTANTIATE_TEST_SUITE_P(
    Activations, MlpGradientCheck,
    ::testing::Values(
        std::make_pair(Activation::kLeakyRelu, Activation::kIdentity),
        std::make_pair(Activation::kRelu, Activation::kIdentity),
        std::make_pair(Activation::kTanh, Activation::kIdentity),
        std::make_pair(Activation::kLeakyRelu, Activation::kSigmoid),
        std::make_pair(Activation::kSigmoid, Activation::kTanh)));

TEST(MlpTest, BackwardReturnsInputGradient) {
  util::Rng rng(13);
  Mlp mlp(SmallConfig(Activation::kTanh, Activation::kIdentity), &rng);
  Matrix x = Matrix::FromRows({{0.1, 0.2, 0.3}});
  Matrix target = Matrix::FromRows({{1.0, -1.0}});

  Matrix pred = mlp.Forward(x);
  Matrix loss_grad;
  MseLoss(pred, target, &loss_grad);
  Matrix input_grad = mlp.Backward(loss_grad);
  ASSERT_EQ(input_grad.rows(), 1u);
  ASSERT_EQ(input_grad.cols(), 3u);

  // Finite-difference the input.
  constexpr double kEps = 1e-6;
  for (size_t c = 0; c < 3; ++c) {
    Matrix plus = x, minus = x;
    plus.At(0, c) += kEps;
    minus.At(0, c) -= kEps;
    Matrix unused;
    double numeric = (MseLoss(mlp.Predict(plus), target, &unused) -
                      MseLoss(mlp.Predict(minus), target, &unused)) /
                     (2 * kEps);
    EXPECT_NEAR(input_grad.At(0, c), numeric, 1e-5);
  }
}

TEST(MlpTest, AdamStepReducesLoss) {
  util::Rng rng(17);
  Mlp mlp(SmallConfig(Activation::kLeakyRelu, Activation::kIdentity), &rng);
  Matrix x = Matrix::FromRows({{0.5, 0.5, 0.5}});
  Matrix target = Matrix::FromRows({{2.0, -2.0}});
  OptimizerConfig adam;

  Matrix grad;
  double initial = MseLoss(mlp.Predict(x), target, &grad);
  for (int i = 0; i < 200; ++i) {
    mlp.ZeroGrad();
    Matrix pred = mlp.Forward(x);
    Matrix g;
    MseLoss(pred, target, &g);
    mlp.Backward(g);
    mlp.Step(adam, 1e-2);
  }
  double final = MseLoss(mlp.Predict(x), target, &grad);
  EXPECT_LT(final, initial * 0.01);
}

TEST(MlpDeathTest, BackwardWithoutForward) {
  util::Rng rng(19);
  Mlp mlp(SmallConfig(Activation::kRelu, Activation::kIdentity), &rng);
  Matrix grad(1, 2);
  EXPECT_DEATH(mlp.Backward(grad), "without a preceding Forward");
}

TEST(MlpDeathTest, WrongInputWidth) {
  util::Rng rng(23);
  Mlp mlp(SmallConfig(Activation::kRelu, Activation::kIdentity), &rng);
  Matrix x(1, 5);
  EXPECT_DEATH(mlp.Forward(x), "MLP forward");
}

}  // namespace
}  // namespace warper::nn
