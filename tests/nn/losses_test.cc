#include "nn/losses.h"

#include <cmath>

#include <gtest/gtest.h>

namespace warper::nn {
namespace {

TEST(MseLossTest, ZeroAtPerfectPrediction) {
  Matrix pred = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix grad;
  EXPECT_DOUBLE_EQ(MseLoss(pred, pred, &grad), 0.0);
  EXPECT_DOUBLE_EQ(grad.SquaredNorm(), 0.0);
}

TEST(MseLossTest, KnownValueAndGradient) {
  Matrix pred = Matrix::FromRows({{2.0}});
  Matrix target = Matrix::FromRows({{0.0}});
  Matrix grad;
  EXPECT_DOUBLE_EQ(MseLoss(pred, target, &grad), 4.0);
  EXPECT_DOUBLE_EQ(grad.At(0, 0), 4.0);  // 2·d / n with n=1
}

TEST(MseLossTest, GradientMatchesFiniteDifference) {
  Matrix pred = Matrix::FromRows({{0.5, -1.0}, {2.0, 0.1}});
  Matrix target = Matrix::FromRows({{1.0, 0.0}, {0.0, 0.0}});
  Matrix grad;
  MseLoss(pred, target, &grad);
  constexpr double kEps = 1e-6;
  for (size_t i = 0; i < pred.data().size(); ++i) {
    Matrix plus = pred, minus = pred;
    plus.data()[i] += kEps;
    minus.data()[i] -= kEps;
    Matrix unused;
    double numeric = (MseLoss(plus, target, &unused) -
                      MseLoss(minus, target, &unused)) /
                     (2 * kEps);
    EXPECT_NEAR(grad.data()[i], numeric, 1e-5);
  }
}

TEST(L1LossTest, KnownValue) {
  Matrix pred = Matrix::FromRows({{1.0, -2.0}});
  Matrix target = Matrix::FromRows({{0.0, 0.0}});
  Matrix grad;
  EXPECT_DOUBLE_EQ(L1Loss(pred, target, &grad), 3.0);
  EXPECT_DOUBLE_EQ(grad.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(grad.At(0, 1), -1.0);
}

TEST(L1LossTest, ZeroDifferenceHasZeroGradient) {
  Matrix pred = Matrix::FromRows({{5.0}});
  Matrix grad;
  L1Loss(pred, pred, &grad);
  EXPECT_DOUBLE_EQ(grad.At(0, 0), 0.0);
}

TEST(SoftmaxTest, RowsSumToOne) {
  Matrix logits = Matrix::FromRows({{1.0, 2.0, 3.0}, {-5.0, 0.0, 5.0}});
  Matrix probs = Softmax(logits);
  for (size_t r = 0; r < probs.rows(); ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < probs.cols(); ++c) {
      EXPECT_GT(probs.At(r, c), 0.0);
      sum += probs.At(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(SoftmaxTest, StableForLargeLogits) {
  Matrix logits = Matrix::FromRows({{1000.0, 1001.0}});
  Matrix probs = Softmax(logits);
  EXPECT_TRUE(std::isfinite(probs.At(0, 0)));
  EXPECT_GT(probs.At(0, 1), probs.At(0, 0));
}

TEST(CrossEntropyTest, PerfectPredictionLowLoss) {
  Matrix logits = Matrix::FromRows({{20.0, 0.0, 0.0}});
  Matrix grad;
  double loss = SoftmaxCrossEntropyLoss(logits, {0}, &grad);
  EXPECT_LT(loss, 1e-6);
}

TEST(CrossEntropyTest, UniformLogitsGiveLogC) {
  Matrix logits = Matrix::FromRows({{0.0, 0.0, 0.0}});
  Matrix grad;
  double loss = SoftmaxCrossEntropyLoss(logits, {1}, &grad);
  EXPECT_NEAR(loss, std::log(3.0), 1e-9);
}

TEST(CrossEntropyTest, GradientMatchesFiniteDifference) {
  Matrix logits = Matrix::FromRows({{0.3, -0.5, 1.2}, {2.0, 0.0, -1.0}});
  std::vector<size_t> labels = {2, 0};
  Matrix grad;
  SoftmaxCrossEntropyLoss(logits, labels, &grad);
  constexpr double kEps = 1e-6;
  for (size_t i = 0; i < logits.data().size(); ++i) {
    Matrix plus = logits, minus = logits;
    plus.data()[i] += kEps;
    minus.data()[i] -= kEps;
    Matrix unused;
    double numeric = (SoftmaxCrossEntropyLoss(plus, labels, &unused) -
                      SoftmaxCrossEntropyLoss(minus, labels, &unused)) /
                     (2 * kEps);
    EXPECT_NEAR(grad.data()[i], numeric, 1e-5);
  }
}

}  // namespace
}  // namespace warper::nn
