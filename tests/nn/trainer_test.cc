#include "nn/trainer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/losses.h"

namespace warper::nn {
namespace {

TEST(ScheduleTest, HalvesEveryDecayPeriod) {
  OptimizerConfig opt;
  opt.learning_rate = 1e-3;
  opt.decay_factor = 0.5;
  opt.decay_every_epochs = 10;
  EXPECT_DOUBLE_EQ(ScheduledLearningRate(opt, 0), 1e-3);
  EXPECT_DOUBLE_EQ(ScheduledLearningRate(opt, 9), 1e-3);
  EXPECT_DOUBLE_EQ(ScheduledLearningRate(opt, 10), 5e-4);
  EXPECT_DOUBLE_EQ(ScheduledLearningRate(opt, 25), 2.5e-4);
}

TEST(ScheduleTest, DisabledDecay) {
  OptimizerConfig opt;
  opt.decay_every_epochs = 0;
  EXPECT_DOUBLE_EQ(ScheduledLearningRate(opt, 100), opt.learning_rate);
}

TEST(TrainRegressorTest, LearnsLinearFunction) {
  util::Rng rng(5);
  MlpConfig config;
  config.layer_sizes = {2, 16, 1};
  Mlp mlp(config, &rng);

  // y = 2·x0 − x1.
  Matrix x(200, 2), y(200, 1);
  for (size_t i = 0; i < 200; ++i) {
    double a = rng.Uniform(-1, 1), b = rng.Uniform(-1, 1);
    x.SetRow(i, {a, b});
    y.At(i, 0) = 2 * a - b;
  }
  TrainConfig tc;
  tc.epochs = 150;
  tc.optimizer.learning_rate = 5e-3;
  tc.early_stop_rel_tol = 0;  // run all epochs
  TrainStats stats = TrainRegressor(&mlp, x, y, tc, &rng);
  EXPECT_GT(stats.epochs_run, 0);
  EXPECT_LT(stats.final_loss, 0.02);
}

TEST(TrainRegressorTest, L1LossAlsoConverges) {
  util::Rng rng(6);
  MlpConfig config;
  config.layer_sizes = {1, 8, 1};
  Mlp mlp(config, &rng);
  Matrix x(64, 1), y(64, 1);
  for (size_t i = 0; i < 64; ++i) {
    double a = rng.Uniform(0, 1);
    x.At(i, 0) = a;
    y.At(i, 0) = 3 * a;
  }
  TrainConfig tc;
  tc.epochs = 250;
  tc.optimizer.learning_rate = 2e-2;
  tc.optimizer.decay_every_epochs = 50;
  tc.early_stop_rel_tol = 0;  // run all epochs
  TrainStats stats = TrainRegressor(&mlp, x, y, tc, &rng, RegressionLoss::kL1);
  EXPECT_LT(stats.final_loss, 0.15);
}

TEST(TrainRegressorTest, EarlyStopTerminatesBeforeEpochLimit) {
  util::Rng rng(7);
  MlpConfig config;
  config.layer_sizes = {1, 4, 1};
  Mlp mlp(config, &rng);
  // Constant target: converges almost immediately.
  Matrix x(32, 1, 0.5), y(32, 1, 0.0);
  TrainConfig tc;
  tc.epochs = 500;
  tc.early_stop_rel_tol = 1e-3;
  tc.early_stop_patience = 3;
  TrainStats stats = TrainRegressor(&mlp, x, y, tc, &rng);
  EXPECT_LT(stats.epochs_run, 500);
}

TEST(TrainClassifierTest, LearnsSeparableClasses) {
  util::Rng rng(9);
  MlpConfig config;
  config.layer_sizes = {2, 16, 3};
  Mlp mlp(config, &rng);

  // Three well-separated Gaussian blobs.
  Matrix x(240, 2);
  std::vector<size_t> labels(240);
  double centers[3][2] = {{0, 0}, {4, 0}, {0, 4}};
  for (size_t i = 0; i < 240; ++i) {
    size_t c = i % 3;
    x.SetRow(i, {centers[c][0] + rng.Normal(0, 0.3),
                 centers[c][1] + rng.Normal(0, 0.3)});
    labels[i] = c;
  }
  TrainConfig tc;
  tc.epochs = 60;
  tc.optimizer.learning_rate = 5e-3;
  TrainClassifier(&mlp, x, labels, tc, &rng);

  // Check accuracy on the training blobs.
  Matrix logits = mlp.Predict(x);
  int correct = 0;
  for (size_t i = 0; i < 240; ++i) {
    size_t best = 0;
    for (size_t c = 1; c < 3; ++c) {
      if (logits.At(i, c) > logits.At(i, best)) best = c;
    }
    correct += best == labels[i] ? 1 : 0;
  }
  EXPECT_GT(correct, 230);
}

}  // namespace
}  // namespace warper::nn
