// Scalar ↔ SIMD kernel equivalence, and the dispatch contract.
//
// The scalar table is the bit-exact reference; the AVX2+FMA table contracts
// with FMA and register-blocked accumulation, so it agrees with scalar only
// to a relative tolerance. The documented policy (DESIGN.md "Kernel dispatch
// & SIMD"): |simd − scalar| ≤ 1e-12 · max(1, |scalar|) at every element for
// the shapes this system runs (k ≤ a few hundred). Shapes here are chosen to
// be awkward on purpose: empty, single-element, widths that are not a
// multiple of the 4-lane vector width or the 8-wide micro-kernel panel, and
// self-products (aliasing A = B).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "nn/kernels.h"
#include "nn/matrix.h"
#include "nn/mlp.h"
#include "util/cpu_features.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace warper::nn {
namespace {

constexpr double kRelTol = 1e-12;

bool Avx2Available() {
  return util::BestSupportedSimdLevel() == util::SimdLevel::kAvx2 &&
         internal::Avx2KernelsCompiled();
}

Matrix RandomMatrix(size_t rows, size_t cols, util::Rng* rng) {
  Matrix m(rows, cols);
  for (double& v : m.data()) v = rng->Uniform() * 2.0 - 1.0;
  return m;
}

void ExpectClose(const Matrix& simd, const Matrix& scalar) {
  ASSERT_EQ(simd.rows(), scalar.rows());
  ASSERT_EQ(simd.cols(), scalar.cols());
  for (size_t i = 0; i < simd.data().size(); ++i) {
    double tol = kRelTol * std::max(1.0, std::fabs(scalar.data()[i]));
    EXPECT_NEAR(simd.data()[i], scalar.data()[i], tol) << "at flat index " << i;
  }
}

class KernelDispatchTest : public ::testing::Test {
 protected:
  void TearDown() override { UseKernels(util::SimdMode::kScalar, 1); }

  // Installs a kernel table + thread policy. deterministic=false so the simd
  // mode alone decides the table.
  static void UseKernels(util::SimdMode mode, int threads) {
    util::ParallelConfig config;
    config.threads = threads;
    config.deterministic = false;
    config.simd = mode;
    if (threads > 1) util::ThreadPool::Configure(config);
    SetMatrixParallelism(config);
  }
};

struct GemmShape {
  size_t m, k, n;
};

// Widths deliberately off the 4-lane / 8-panel grid, plus degenerate sizes
// and the MLP's real shapes (batch×in trunk, 128×128, 128×|z|).
const GemmShape kShapes[] = {
    {0, 5, 3},   {1, 1, 1},    {3, 7, 5},      {17, 23, 9},
    {5, 4, 1},   {33, 7, 66},  {64, 130, 128}, {128, 128, 128},
    {64, 128, 16},
};

TEST_F(KernelDispatchTest, ForcedModesInstallTheRightTable) {
  UseKernels(util::SimdMode::kScalar, 1);
  EXPECT_STREQ(ActiveKernelName(), "scalar");
  if (Avx2Available()) {
    UseKernels(util::SimdMode::kAvx2, 1);
    EXPECT_STREQ(ActiveKernelName(), "avx2");
  }
}

TEST_F(KernelDispatchTest, DeterministicConfigsPinScalar) {
  util::ParallelConfig config;  // deterministic = true, simd = kAuto
  config.threads = 4;
  SetMatrixParallelism(config);
  EXPECT_STREQ(ActiveKernelName(), "scalar");
}

TEST_F(KernelDispatchTest, AutoNonDeterministicUsesBestAvailable) {
  util::ParallelConfig config;
  config.threads = 1;
  config.deterministic = false;
  SetMatrixParallelism(config);
  if (Avx2Available()) {
    EXPECT_STREQ(ActiveKernelName(), "avx2");
  } else {
    EXPECT_STREQ(ActiveKernelName(), "scalar");
  }
}

TEST_F(KernelDispatchTest, MatMulMatchesScalarAcrossShapes) {
  if (!Avx2Available()) GTEST_SKIP() << "no AVX2+FMA on this host";
  util::Rng rng(21);
  for (const GemmShape& s : kShapes) {
    Matrix a = RandomMatrix(s.m, s.k, &rng);
    Matrix b = RandomMatrix(s.k, s.n, &rng);
    UseKernels(util::SimdMode::kScalar, 1);
    Matrix expected = a.MatMul(b);
    UseKernels(util::SimdMode::kAvx2, 1);
    Matrix actual = a.MatMul(b);
    ExpectClose(actual, expected);
  }
}

TEST_F(KernelDispatchTest, TransposeMatMulMatchesScalarAcrossShapes) {
  if (!Avx2Available()) GTEST_SKIP() << "no AVX2+FMA on this host";
  util::Rng rng(22);
  for (const GemmShape& s : kShapes) {
    Matrix a = RandomMatrix(s.k, s.m, &rng);  // Aᵀ is m×k
    Matrix b = RandomMatrix(s.k, s.n, &rng);
    UseKernels(util::SimdMode::kScalar, 1);
    Matrix expected = a.TransposeMatMul(b);
    UseKernels(util::SimdMode::kAvx2, 1);
    Matrix actual = a.TransposeMatMul(b);
    ExpectClose(actual, expected);
  }
}

TEST_F(KernelDispatchTest, MatMulTransposeMatchesScalarAcrossShapes) {
  if (!Avx2Available()) GTEST_SKIP() << "no AVX2+FMA on this host";
  util::Rng rng(23);
  for (const GemmShape& s : kShapes) {
    Matrix a = RandomMatrix(s.m, s.k, &rng);
    Matrix b = RandomMatrix(s.n, s.k, &rng);  // Bᵀ is k×n
    UseKernels(util::SimdMode::kScalar, 1);
    Matrix expected = a.MatMulTranspose(b);
    UseKernels(util::SimdMode::kAvx2, 1);
    Matrix actual = a.MatMulTranspose(b);
    ExpectClose(actual, expected);
  }
}

// A·A, Aᵀ·A and A·Aᵀ share one buffer between both operands; the kernels
// must not be confused by the aliasing (output is always a fresh matrix).
TEST_F(KernelDispatchTest, SelfProductsTolerateOperandAliasing) {
  if (!Avx2Available()) GTEST_SKIP() << "no AVX2+FMA on this host";
  util::Rng rng(24);
  Matrix a = RandomMatrix(37, 37, &rng);
  UseKernels(util::SimdMode::kScalar, 1);
  Matrix mm = a.MatMul(a);
  Matrix tm = a.TransposeMatMul(a);
  Matrix mt = a.MatMulTranspose(a);
  UseKernels(util::SimdMode::kAvx2, 1);
  ExpectClose(a.MatMul(a), mm);
  ExpectClose(a.TransposeMatMul(a), tm);
  ExpectClose(a.MatMulTranspose(a), mt);
}

TEST_F(KernelDispatchTest, ElementwiseKernelsMatchScalar) {
  if (!Avx2Available()) GTEST_SKIP() << "no AVX2+FMA on this host";
  util::Rng rng(25);
  for (size_t cols : {1u, 3u, 4u, 7u, 129u}) {
    Matrix m = RandomMatrix(9, cols, &rng);
    std::vector<double> bias(cols);
    for (double& v : bias) v = rng.Uniform() - 0.5;

    UseKernels(util::SimdMode::kScalar, 1);
    Matrix broadcast_ref = m;
    broadcast_ref.AddRowBroadcast(bias);
    std::vector<double> sums_ref = m.ColumnSums();
    Matrix scaled_ref = m;
    scaled_ref.Scale(0.37);
    double norm_ref = m.SquaredNorm();

    UseKernels(util::SimdMode::kAvx2, 1);
    Matrix broadcast = m;
    broadcast.AddRowBroadcast(bias);
    ExpectClose(broadcast, broadcast_ref);
    std::vector<double> sums = m.ColumnSums();
    for (size_t c = 0; c < cols; ++c) {
      EXPECT_NEAR(sums[c], sums_ref[c],
                  kRelTol * std::max(1.0, std::fabs(sums_ref[c])));
    }
    Matrix scaled = m;
    scaled.Scale(0.37);
    ExpectClose(scaled, scaled_ref);
    double norm = m.SquaredNorm();
    EXPECT_NEAR(norm, norm_ref, kRelTol * std::max(1.0, norm_ref));
  }
}

// The fused epilogue on the scalar table must be *bit-identical* to the
// unfused MatMul + AddRowBroadcast + activation sequence: fusion reorders
// passes, never arithmetic.
TEST_F(KernelDispatchTest, ScalarFusedEpilogueIsBitExact) {
  util::Rng rng(26);
  UseKernels(util::SimdMode::kScalar, 1);
  Matrix x = RandomMatrix(13, 10, &rng);
  Matrix w = RandomMatrix(10, 7, &rng);
  std::vector<double> bias(7);
  for (double& v : bias) v = rng.Uniform() - 0.5;
  for (Activation act :
       {Activation::kIdentity, Activation::kRelu, Activation::kLeakyRelu,
        Activation::kSigmoid, Activation::kTanh}) {
    Matrix unfused = x.MatMul(w);
    unfused.AddRowBroadcast(bias);
    for (double& v : unfused.data()) {
      switch (act) {
        case Activation::kIdentity:
          break;
        case Activation::kRelu:
          v = v > 0.0 ? v : 0.0;
          break;
        case Activation::kLeakyRelu:
          v = v > 0.0 ? v : kLeakyReluSlope * v;
          break;
        case Activation::kSigmoid:
          v = 1.0 / (1.0 + std::exp(-v));
          break;
        case Activation::kTanh:
          v = std::tanh(v);
          break;
      }
    }
    Matrix fused = x.MatMulBiasAct(w, bias, act);
    EXPECT_EQ(fused.data(), unfused.data());
  }
}

TEST_F(KernelDispatchTest, FusedEpilogueMatchesScalarOnAvx2) {
  if (!Avx2Available()) GTEST_SKIP() << "no AVX2+FMA on this host";
  util::Rng rng(27);
  Matrix x = RandomMatrix(19, 33, &rng);
  Matrix w = RandomMatrix(33, 13, &rng);
  std::vector<double> bias(13);
  for (double& v : bias) v = rng.Uniform() - 0.5;
  for (Activation act :
       {Activation::kIdentity, Activation::kRelu, Activation::kLeakyRelu,
        Activation::kSigmoid, Activation::kTanh}) {
    UseKernels(util::SimdMode::kScalar, 1);
    Matrix expected = x.MatMulBiasAct(w, bias, act);
    UseKernels(util::SimdMode::kAvx2, 1);
    Matrix actual = x.MatMulBiasAct(w, bias, act);
    ExpectClose(actual, expected);
  }
}

TEST_F(KernelDispatchTest, ActivationGradMatchesScalarOnAvx2) {
  if (!Avx2Available()) GTEST_SKIP() << "no AVX2+FMA on this host";
  util::Rng rng(28);
  Matrix post = RandomMatrix(11, 17, &rng);
  Matrix grad0 = RandomMatrix(11, 17, &rng);
  for (Activation act :
       {Activation::kIdentity, Activation::kRelu, Activation::kLeakyRelu,
        Activation::kSigmoid, Activation::kTanh}) {
    UseKernels(util::SimdMode::kScalar, 1);
    Matrix expected = grad0;
    ActivationGradInPlace(act, post, &expected);
    UseKernels(util::SimdMode::kAvx2, 1);
    Matrix actual = grad0;
    ActivationGradInPlace(act, post, &actual);
    ExpectClose(actual, expected);
  }
}

// Row-range partitioning never changes accumulation order, so the AVX2 path
// is parallel↔serial bit-identical too (only scalar↔SIMD is approximate).
TEST_F(KernelDispatchTest, Avx2ParallelIsBitIdenticalToAvx2Serial) {
  if (!Avx2Available()) GTEST_SKIP() << "no AVX2+FMA on this host";
  util::Rng rng(29);
  Matrix a = RandomMatrix(128, 96, &rng);
  Matrix b = RandomMatrix(96, 64, &rng);
  UseKernels(util::SimdMode::kAvx2, 1);
  Matrix serial = a.MatMul(b);
  UseKernels(util::SimdMode::kAvx2, 4);
  Matrix parallel = a.MatMul(b);
  EXPECT_EQ(parallel.data(), serial.data());
}

// The PR 1 reproducibility contract: a deterministic parallel config runs
// the scalar kernels and reproduces the serial scalar bits exactly — through
// the whole fused MLP forward/backward, not just a lone GEMM.
TEST_F(KernelDispatchTest, DeterministicConfigReproducesScalarMlpBits) {
  MlpConfig mlp_config;
  mlp_config.layer_sizes = {10, 16, 16, 3};

  util::Rng rng_a(31);
  util::Rng rng_b(31);
  Mlp serial_mlp(mlp_config, &rng_a);
  Mlp parallel_mlp(mlp_config, &rng_b);

  util::Rng data_rng(32);
  Matrix x = RandomMatrix(24, 10, &data_rng);
  Matrix grad = RandomMatrix(24, 3, &data_rng);

  UseKernels(util::SimdMode::kScalar, 1);
  Matrix y_serial = serial_mlp.Forward(x);
  Matrix gin_serial = serial_mlp.Backward(grad);

  util::ParallelConfig deterministic;  // deterministic = true, simd = kAuto
  deterministic.threads = 4;
  util::ThreadPool::Configure(deterministic);
  SetMatrixParallelism(deterministic);
  Matrix y_parallel = parallel_mlp.Forward(x);
  Matrix gin_parallel = parallel_mlp.Backward(grad);

  EXPECT_EQ(y_parallel.data(), y_serial.data());
  EXPECT_EQ(gin_parallel.data(), gin_serial.data());
}

TEST_F(KernelDispatchTest, CopyRowFromMatchesSetRow) {
  util::Rng rng(33);
  Matrix src = RandomMatrix(6, 11, &rng);
  Matrix via_setrow(3, 11);
  Matrix via_copy(3, 11);
  for (size_t i = 0; i < 3; ++i) {
    via_setrow.SetRow(i, src.Row(2 * i));
    via_copy.CopyRowFrom(i, src, 2 * i);
  }
  EXPECT_EQ(via_copy.data(), via_setrow.data());
}

}  // namespace
}  // namespace warper::nn
