#include <gtest/gtest.h>

#include "baselines/aug.h"
#include "baselines/ft.h"
#include "baselines/hem.h"
#include "baselines/mix.h"
#include "baselines/warper_adapter.h"
#include "ce/lm.h"
#include "ce/metrics.h"
#include "storage/annotator.h"
#include "storage/datasets.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace warper::baselines {
namespace {

struct Env {
  storage::Table table;
  storage::Annotator annotator;
  ce::SingleTableDomain domain;
  util::Rng rng;
  std::vector<ce::LabeledExample> train;
  std::unique_ptr<ce::LmMlp> model;

  explicit Env(uint64_t seed)
      : table(storage::MakePrsa(15000, seed)),
        annotator(&table),
        domain(&annotator),
        rng(seed) {
    train = Examples(workload::GenMethod::kW1, 500, true);
    model = std::make_unique<ce::LmMlp>(domain.FeatureDim(),
                                        ce::LmMlpConfig{}, seed);
    nn::Matrix x;
    std::vector<double> y;
    ce::ExamplesToMatrix(train, &x, &y);
    model->Train(x, y);
  }

  std::vector<ce::LabeledExample> Examples(workload::GenMethod method,
                                           size_t n, bool with_labels) {
    std::vector<storage::RangePredicate> preds =
        workload::GenerateWorkload(table, {method}, n, &rng);
    std::vector<int64_t> counts(n, -1);
    if (with_labels) counts = annotator.BatchCount(preds);
    std::vector<ce::LabeledExample> out(n);
    for (size_t i = 0; i < n; ++i) {
      out[i] = {domain.FeaturizePredicate(preds[i]), counts[i]};
    }
    return out;
  }

  AdapterContext Context() {
    return {&domain, model.get(), &train, /*seed=*/99};
  }
};

TEST(FtAdapterTest, NameReflectsUpdateMode) {
  Env env(1);
  FtAdapter ft(env.Context());
  EXPECT_EQ(ft.Name(), "FT");

  auto gbt = std::make_unique<ce::LmGbt>(env.domain.FeatureDim(),
                                         ce::LmGbtConfig{}, 1);
  nn::Matrix x;
  std::vector<double> y;
  ce::ExamplesToMatrix(env.train, &x, &y);
  gbt->Train(x, y);
  AdapterContext ctx = env.Context();
  ctx.model = gbt.get();
  FtAdapter rt(ctx);
  EXPECT_EQ(rt.Name(), "RT");
}

TEST(FtAdapterTest, ImprovesOnDriftedWorkload) {
  Env env(2);
  std::vector<ce::LabeledExample> test =
      env.Examples(workload::GenMethod::kW3, 100, true);
  double before = ce::ModelGmq(*env.model, test);

  FtAdapter ft(env.Context());
  StepInfo info;
  for (int step = 0; step < 3; ++step) {
    StepStats stats =
        ft.Step(env.Examples(workload::GenMethod::kW3, 80, true), info);
    EXPECT_TRUE(stats.model_updated);
    EXPECT_EQ(stats.annotated, 0u);  // labels already attached
  }
  EXPECT_LT(ce::ModelGmq(*env.model, test), before);
}

TEST(FtAdapterTest, AnnotatesWithinBudget) {
  Env env(3);
  FtAdapter ft(env.Context());
  StepInfo info;
  info.annotation_budget = 15;
  StepStats stats =
      ft.Step(env.Examples(workload::GenMethod::kW3, 60, false), info);
  EXPECT_EQ(stats.annotated, 15u);
  EXPECT_TRUE(stats.model_updated);
}

TEST(FtAdapterTest, NoLabelsNoUpdate) {
  Env env(4);
  FtAdapter ft(env.Context());
  StepInfo info;
  info.annotation_budget = 0;
  StepStats stats =
      ft.Step(env.Examples(workload::GenMethod::kW3, 30, false), info);
  EXPECT_FALSE(stats.model_updated);
}

TEST(MixAdapterTest, UpdatesWithTrainMixture) {
  Env env(5);
  MixAdapter mix(env.Context());
  StepInfo info;
  StepStats stats =
      mix.Step(env.Examples(workload::GenMethod::kW3, 50, true), info);
  EXPECT_TRUE(stats.model_updated);
  EXPECT_EQ(stats.synthesized, 0u);
}

TEST(AugAdapterTest, SynthesizesAndAnnotates) {
  Env env(6);
  AugAdapter aug(env.Context(), /*gen_fraction=*/0.2);
  StepInfo info;
  StepStats stats =
      aug.Step(env.Examples(workload::GenMethod::kW3, 50, true), info);
  EXPECT_EQ(stats.synthesized, 10u);  // 20% of 50
  EXPECT_EQ(stats.annotated, 10u);    // synthetic queries need labels
  EXPECT_TRUE(stats.model_updated);
}

TEST(AugAdapterTest, GeneratorDisabledBelowOneQuery) {
  Env env(7);
  AugAdapter aug(env.Context(), /*gen_fraction=*/0.1);
  StepInfo info;
  StepStats stats =
      aug.Step(env.Examples(workload::GenMethod::kW3, 5, true), info);
  EXPECT_EQ(stats.synthesized, 0u);  // 0.1 · 5 < 1
}

TEST(SynthesizeNoisyTest, ProducesCanonicalFeatures) {
  Env env(8);
  util::Rng rng(8);
  std::vector<ce::LabeledExample> seeds =
      env.Examples(workload::GenMethod::kW3, 10, true);
  std::vector<ce::LabeledExample> synth =
      SynthesizeNoisy(env.domain, seeds, 20, 0.1, &rng);
  ASSERT_EQ(synth.size(), 20u);
  size_t d = env.domain.FeatureDim() / 2;
  for (const auto& e : synth) {
    EXPECT_EQ(e.cardinality, -1);
    for (size_t c = 0; c < d; ++c) {
      EXPECT_LE(e.features[c], e.features[d + c] + 1e-12);
    }
  }
}

TEST(HemAdapterTest, MinesAndUpdates) {
  Env env(9);
  HemAdapter hem(env.Context());
  StepInfo info;
  StepStats stats =
      hem.Step(env.Examples(workload::GenMethod::kW3, 60, true), info);
  EXPECT_TRUE(stats.model_updated);
  EXPECT_GT(stats.synthesized, 0u);
}

TEST(WarperAdapterTest, NameCoversAblations) {
  Env env(10);
  core::WarperConfig config;
  config.hidden_units = 32;
  config.hidden_layers = 2;
  config.n_i = 20;
  WarperAdapter plain(env.Context(), config);
  EXPECT_EQ(plain.Name(), "Warper");

  core::WarperConfig rnd = config;
  rnd.picker_variant = core::PickerVariant::kRandom;
  WarperAdapter p_rnd(env.Context(), rnd);
  EXPECT_EQ(p_rnd.Name(), "Warper(P->rnd)");

  core::WarperConfig gen = config;
  gen.generator_variant = core::GeneratorVariant::kNoiseAug;
  WarperAdapter g_aug(env.Context(), gen);
  EXPECT_EQ(g_aug.Name(), "Warper(G->AUG)");
}

TEST(WarperAdapterTest, StepExposesInvocationStats) {
  Env env(11);
  core::WarperConfig config;
  config.hidden_units = 32;
  config.hidden_layers = 2;
  config.n_i = 30;
  config.n_p = 100;
  WarperAdapter adapter(env.Context(), config);
  StepInfo info;
  StepStats stats =
      adapter.Step(env.Examples(workload::GenMethod::kW3, 60, true), info);
  EXPECT_TRUE(stats.model_updated);
  EXPECT_EQ(adapter.last_result().mode.c2, true);
}

}  // namespace
}  // namespace warper::baselines
