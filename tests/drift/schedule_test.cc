#include "drift/schedule.h"

#include <gtest/gtest.h>

#include "storage/data_drift.h"
#include "storage/datasets.h"
#include "storage/parallel_annotator.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace warper::drift {
namespace {

using storage::Table;

workload::WorkloadSpec PaperWorkload() {
  return workload::WorkloadSpec::Parse("w12/345").ValueOrDie();
}

void ExpectTablesIdentical(const Table& a, const Table& b) {
  ASSERT_EQ(a.NumRows(), b.NumRows());
  ASSERT_EQ(a.NumColumns(), b.NumColumns());
  for (size_t c = 0; c < a.NumColumns(); ++c) {
    for (size_t r = 0; r < a.NumRows(); ++r) {
      ASSERT_EQ(a.column(c).Value(r), b.column(c).Value(r))
          << "cell (" << r << ", " << c << ")";
    }
  }
}

TEST(DriftScheduleTest, SettlingFamiliesRampThenHold) {
  DriftSchedule schedule(DriftSpec::Parse("workload@0.8/4").ValueOrDie(),
                         PaperWorkload(), 6);
  EXPECT_DOUBLE_EQ(schedule.WorkloadWeightAt(0), 0.2);
  EXPECT_DOUBLE_EQ(schedule.WorkloadWeightAt(1), 0.4);
  EXPECT_DOUBLE_EQ(schedule.WorkloadWeightAt(3), 0.8);
  EXPECT_DOUBLE_EQ(schedule.WorkloadWeightAt(5), 0.8);  // holds at intensity
}

TEST(DriftScheduleTest, PresetsFlipOvernight) {
  // c2/c3: full drift from the first step — the paper's all-or-nothing flip.
  DriftSchedule schedule(DriftSpec::C2(), PaperWorkload(), 5);
  for (size_t s = 0; s < 5; ++s) {
    EXPECT_DOUBLE_EQ(schedule.WorkloadWeightAt(s), 1.0);
    EXPECT_EQ(schedule.ArrivalMixAt(s).methods, PaperWorkload().drifted);
  }
  // c1: workload untouched.
  DriftSchedule c1(DriftSpec::C1(), PaperWorkload(), 5);
  for (size_t s = 0; s < 5; ++s) {
    EXPECT_DOUBLE_EQ(c1.WorkloadWeightAt(s), 0.0);
    EXPECT_EQ(c1.ArrivalMixAt(s).methods, PaperWorkload().train);
  }
}

TEST(DriftScheduleTest, OscillationFlipsEveryCadence) {
  DriftSchedule schedule(DriftSpec::Parse("osc@0.6/2").ValueOrDie(),
                         PaperWorkload(), 8);
  // Drifted phase first, half-period 2.
  EXPECT_DOUBLE_EQ(schedule.WorkloadWeightAt(0), 0.6);
  EXPECT_DOUBLE_EQ(schedule.WorkloadWeightAt(1), 0.6);
  EXPECT_DOUBLE_EQ(schedule.WorkloadWeightAt(2), 0.0);
  EXPECT_DOUBLE_EQ(schedule.WorkloadWeightAt(3), 0.0);
  EXPECT_DOUBLE_EQ(schedule.WorkloadWeightAt(4), 0.6);
  EXPECT_FALSE(schedule.HasMidRunDataEvents());
}

TEST(DriftScheduleTest, DataEventsLandInFirstCadenceSteps) {
  DriftSchedule schedule(DriftSpec::Parse("data@1.0/3").ValueOrDie(),
                         PaperWorkload(), 6);
  EXPECT_TRUE(schedule.HasDataEventAt(0));
  EXPECT_TRUE(schedule.HasDataEventAt(1));
  EXPECT_TRUE(schedule.HasDataEventAt(2));
  EXPECT_FALSE(schedule.HasDataEventAt(3));
  EXPECT_TRUE(schedule.HasMidRunDataEvents());

  DriftSchedule overnight(DriftSpec::C1(), PaperWorkload(), 6);
  EXPECT_TRUE(overnight.HasDataEventAt(0));
  EXPECT_FALSE(overnight.HasMidRunDataEvents());
}

TEST(DriftScheduleTest, C1PresetEventEqualsSortTruncateHalf) {
  // The c1 preset's single event must be byte-identical to the paper's
  // sort + truncate half (the retired harness's exact mutation).
  Table drifted = storage::MakePrsa(3001, 5);
  Table legacy = storage::MakePrsa(3001, 5);

  DriftSchedule schedule(DriftSpec::C1(), PaperWorkload(), 5);
  DriftEvent event = schedule.ApplyDataEventAt(&drifted, 0);
  storage::SortTruncateHalf(&legacy, PickDriftSortColumn(legacy));

  ExpectTablesIdentical(drifted, legacy);
  EXPECT_TRUE(event.sorted);
  EXPECT_EQ(event.rows_truncated, 3001u - 3001u / 2);
  EXPECT_DOUBLE_EQ(event.event_intensity, 1.0);
}

TEST(DriftScheduleTest, MutationsAreByteIdenticalAcrossRunsAndThreadCounts) {
  // The per-event RNG is derived from (spec.seed, step) alone, so replaying
  // a schedule gives identical table bytes regardless of what else runs —
  // including annotation passes with different thread-pool widths between
  // the events.
  DriftSpec spec = DriftSpec::Parse("corr@0.7/2~42").ValueOrDie();
  auto replay = [&](int annotate_threads) {
    Table table = storage::MakeHiggs(2000, 9);
    DriftSchedule schedule(spec, PaperWorkload(), 4);
    for (size_t s = 0; s < 4; ++s) {
      if (!schedule.HasDataEventAt(s)) continue;
      schedule.ApplyDataEventAt(&table, s);
      // Unrelated concurrent work must not perturb the mutation stream.
      storage::ParallelAnnotator annotator(&table, annotate_threads);
      util::Rng canary_rng(5 + annotate_threads);
      std::vector<storage::RangePredicate> canaries =
          storage::MakeCanaryPredicates(table, 8, &canary_rng);
      annotator.BatchCount(canaries);
    }
    return table;
  };
  Table one = replay(1);
  Table four = replay(4);
  ExpectTablesIdentical(one, four);

  // And a third, straight-line replay with no annotation at all.
  Table plain = storage::MakeHiggs(2000, 9);
  DriftSchedule schedule(spec, PaperWorkload(), 4);
  schedule.ApplyDataEventAt(&plain, 0);
  schedule.ApplyDataEventAt(&plain, 1);
  ExpectTablesIdentical(one, plain);
}

TEST(DriftScheduleTest, QueryStreamsAreDeterministicGivenSeed) {
  // Same spec + same generator seed ⇒ identical per-step arrival predicates.
  Table table = storage::MakePrsa(1500, 3);
  DriftSpec spec = DriftSpec::Parse("workload@0.6/3").ValueOrDie();
  auto stream = [&]() {
    DriftSchedule schedule(spec, PaperWorkload(), 4);
    util::Rng rng(77);
    std::vector<std::vector<storage::RangePredicate>> batches;
    for (size_t s = 0; s < 4; ++s) {
      batches.push_back(workload::GenerateWorkload(
          table, schedule.ArrivalMixAt(s), 30, &rng));
    }
    return batches;
  };
  EXPECT_EQ(stream(), stream());
}

TEST(DriftScheduleTest, IntensityScalesTruncation) {
  // data@0.5 keeps 1 − 0.5/2 = 75% of the rows in its single event.
  Table table = storage::MakePrsa(2000, 7);
  DriftSpec spec = DriftSpec::Parse("data@0.5/1").ValueOrDie();
  spec.append_fraction = 0.0;  // isolate the truncation share
  spec.update_fraction = 0.0;
  DriftSchedule schedule(spec, PaperWorkload(), 3);
  DriftEvent event = schedule.ApplyDataEventAt(&table, 0);
  EXPECT_EQ(table.NumRows(), 1500u);
  EXPECT_EQ(event.rows_truncated, 500u);
  // Zero intensity ⇒ no events at all.
  DriftSchedule none(DriftSpec::Parse("data@0.0/1").ValueOrDie(),
                     PaperWorkload(), 3);
  EXPECT_FALSE(none.HasDataEventAt(0));
}

TEST(DriftScheduleTest, PublishesStepTelemetryGauges) {
  DriftSchedule schedule(DriftSpec::Parse("workload@0.8/2").ValueOrDie(),
                         PaperWorkload(), 4);
  schedule.PublishStepTelemetry(1);
  util::MetricsSnapshot snapshot = util::Metrics().Snapshot();
  EXPECT_DOUBLE_EQ(snapshot.gauges.at("drift.step"), 1.0);
  EXPECT_DOUBLE_EQ(snapshot.gauges.at("drift.intensity"), 0.8);
}

}  // namespace
}  // namespace warper::drift
