#include "drift/spec.h"

#include <gtest/gtest.h>

namespace warper::drift {
namespace {

TEST(DriftSpecTest, PresetsMatchPaperScenarios) {
  DriftSpec c1 = DriftSpec::C1();
  EXPECT_EQ(c1.family, DriftFamily::kData);
  EXPECT_DOUBLE_EQ(c1.intensity, 1.0);
  EXPECT_EQ(c1.cadence, 1u);
  EXPECT_FALSE(c1.arrivals_labeled);
  EXPECT_TRUE(c1.sort_truncate);
  EXPECT_DOUBLE_EQ(c1.append_fraction, 0.0);
  EXPECT_DOUBLE_EQ(c1.update_fraction, 0.0);
  EXPECT_TRUE(c1.DriftsData());
  EXPECT_FALSE(c1.DriftsWorkload());

  DriftSpec c2 = DriftSpec::C2();
  EXPECT_EQ(c2.family, DriftFamily::kWorkload);
  EXPECT_TRUE(c2.arrivals_labeled);
  EXPECT_FALSE(c2.DriftsData());
  EXPECT_TRUE(c2.DriftsWorkload());

  DriftSpec c3 = DriftSpec::C3();
  EXPECT_EQ(c3.family, DriftFamily::kWorkload);
  EXPECT_FALSE(c3.arrivals_labeled);
}

TEST(DriftSpecTest, ParsesPresetNames) {
  EXPECT_EQ(DriftSpec::Parse("c1").ValueOrDie().ToString(), "c1");
  EXPECT_EQ(DriftSpec::Parse("c2").ValueOrDie().ToString(), "c2");
  EXPECT_EQ(DriftSpec::Parse("c3").ValueOrDie().ToString(), "c3");
}

TEST(DriftSpecTest, ParsesGrammar) {
  DriftSpec spec = DriftSpec::Parse("workload@0.75/2").ValueOrDie();
  EXPECT_EQ(spec.family, DriftFamily::kWorkload);
  EXPECT_DOUBLE_EQ(spec.intensity, 0.75);
  EXPECT_EQ(spec.cadence, 2u);
  EXPECT_FALSE(spec.arrivals_labeled);

  spec = DriftSpec::Parse("osc/3+labels").ValueOrDie();
  EXPECT_EQ(spec.family, DriftFamily::kOscillating);
  EXPECT_DOUBLE_EQ(spec.intensity, 1.0);
  EXPECT_EQ(spec.cadence, 3u);
  EXPECT_TRUE(spec.arrivals_labeled);

  spec = DriftSpec::Parse("corr@0.5/3~17").ValueOrDie();
  EXPECT_EQ(spec.family, DriftFamily::kCorrelated);
  EXPECT_DOUBLE_EQ(spec.intensity, 0.5);
  EXPECT_EQ(spec.cadence, 3u);
  EXPECT_EQ(spec.seed, 17u);
  EXPECT_TRUE(spec.DriftsData());
  EXPECT_TRUE(spec.DriftsWorkload());
  // The grammar's data families use the blended mutation composition.
  EXPECT_GT(spec.append_fraction, 0.0);
  EXPECT_GT(spec.update_fraction, 0.0);

  spec = DriftSpec::Parse("none").ValueOrDie();
  EXPECT_EQ(spec.family, DriftFamily::kNone);
  EXPECT_FALSE(spec.DriftsData());
  EXPECT_FALSE(spec.DriftsWorkload());
}

TEST(DriftSpecTest, ToStringRoundTrips) {
  for (const char* s :
       {"c1", "c2", "c3", "workload@0.75/2", "data@0.50/4", "osc@1.00/3",
        "corr@0.25/2+labels", "workload@0.40/1~99"}) {
    DriftSpec spec = DriftSpec::Parse(s).ValueOrDie();
    DriftSpec again = DriftSpec::Parse(spec.ToString()).ValueOrDie();
    EXPECT_EQ(again.ToString(), spec.ToString()) << s;
    EXPECT_EQ(again.family, spec.family) << s;
    EXPECT_DOUBLE_EQ(again.intensity, spec.intensity) << s;
    EXPECT_EQ(again.cadence, spec.cadence) << s;
    EXPECT_EQ(again.seed, spec.seed) << s;
    EXPECT_EQ(again.arrivals_labeled, spec.arrivals_labeled) << s;
  }
}

TEST(DriftSpecTest, RejectsMalformedInput) {
  EXPECT_FALSE(DriftSpec::Parse("").ok());
  EXPECT_FALSE(DriftSpec::Parse("c9").ok());
  EXPECT_FALSE(DriftSpec::Parse("shift").ok());
  EXPECT_FALSE(DriftSpec::Parse("workload@1.5").ok());
  EXPECT_FALSE(DriftSpec::Parse("workload@-0.5").ok());
  EXPECT_FALSE(DriftSpec::Parse("workload@").ok());
  EXPECT_FALSE(DriftSpec::Parse("workload/0").ok());
  EXPECT_FALSE(DriftSpec::Parse("workload/x").ok());
  EXPECT_FALSE(DriftSpec::Parse("osc+nolabels").ok());
  EXPECT_FALSE(DriftSpec::Parse("data~").ok());
}

TEST(DriftSpecTest, ValidateRejectsOutOfRangeFields) {
  DriftSpec spec = DriftSpec::C2();
  spec.intensity = 1.5;
  EXPECT_FALSE(spec.Validate().ok());
  spec = DriftSpec::C2();
  spec.cadence = 0;
  EXPECT_FALSE(spec.Validate().ok());
  // A data-drifting spec whose mutation composition is empty does nothing.
  spec = DriftSpec::C1();
  spec.sort_truncate = false;
  EXPECT_FALSE(spec.Validate().ok());
}

TEST(DriftSpecTest, FamilyNamesComplete) {
  EXPECT_STREQ(DriftFamilyName(DriftFamily::kNone), "none");
  EXPECT_STREQ(DriftFamilyName(DriftFamily::kData), "data");
  EXPECT_STREQ(DriftFamilyName(DriftFamily::kWorkload), "workload");
  EXPECT_STREQ(DriftFamilyName(DriftFamily::kCorrelated), "corr");
  EXPECT_STREQ(DriftFamilyName(DriftFamily::kOscillating), "osc");
}

}  // namespace
}  // namespace warper::drift
