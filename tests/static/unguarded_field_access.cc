// MUST NOT COMPILE under -Werror=thread-safety: writes a guarded field
// without holding its mutex.
#include "util/mutex.h"

namespace {

class Queue {
 public:
  void Push(int v) { depth_ += v; }  // no lock: guarded_by violation

 private:
  warper::util::Mutex mu_;
  int depth_ WARPER_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Queue q;
  q.Push(1);
  return 0;
}
