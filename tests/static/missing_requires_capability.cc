// MUST NOT COMPILE under -Werror=thread-safety: calls a
// WARPER_REQUIRES(mu_) internal entry point without holding the lock.
#include "util/mutex.h"

namespace {

class Queue {
 public:
  void Push(int v) { PushLocked(v); }  // requires_capability violation

 private:
  void PushLocked(int v) WARPER_REQUIRES(mu_) { depth_ += v; }

  warper::util::Mutex mu_;
  int depth_ WARPER_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Queue q;
  q.Push(1);
  return 0;
}
