// MUST NOT COMPILE under -Werror=thread-safety: CondVar::Wait requires the
// caller to hold the mutex it releases while blocking.
#include "util/mutex.h"

namespace {

class Waiter {
 public:
  void WaitForSignal() {
    cv_.Wait(&mu_);  // requires mu_ held
  }

 private:
  warper::util::Mutex mu_;
  warper::util::CondVar cv_;
};

}  // namespace

int main() {
  Waiter w;
  w.WaitForSignal();
  return 0;
}
