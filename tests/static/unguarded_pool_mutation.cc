// MUST NOT COMPILE under -Werror=thread-safety: mutates a QueryPool without
// its writer capability — the acceptance check that removing a lock
// acquisition from a pool writer demonstrably fails the build.
#include "core/query_pool.h"

int main() {
  warper::core::QueryPool pool;
  pool.AppendLabeled({0.5}, 1.0, warper::core::Source::kNew);  // no writer_mu()
  return 0;
}
