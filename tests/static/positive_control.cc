// Positive control for the negative-compilation suite: exercises every
// construct the reject_* snippets violate, with the contracts respected.
// If this fails to compile, the harness (flags / include path) is broken
// and the rejections prove nothing.
#include "core/query_pool.h"
#include "util/mutex.h"

namespace {

class Queue {
 public:
  void Push(int v) WARPER_EXCLUDES(mu_) {
    warper::util::MutexLock lock(&mu_);
    PushLocked(v);
  }

  int BlockingPop() WARPER_EXCLUDES(mu_) {
    warper::util::MutexLock lock(&mu_);
    while (depth_ == 0) not_empty_.Wait(&mu_);
    return --depth_;
  }

 private:
  void PushLocked(int v) WARPER_REQUIRES(mu_) {
    depth_ += v;
    not_empty_.NotifyOne();
  }

  warper::util::Mutex mu_;
  warper::util::CondVar not_empty_;
  int depth_ WARPER_GUARDED_BY(mu_) = 0;
};

void MutatePool(warper::core::QueryPool* pool) {
  warper::util::MutexLock writer(&pool->writer_mu());
  pool->AppendLabeled({0.5}, 1.0, warper::core::Source::kNew);
}

}  // namespace

int main() {
  Queue q;
  q.Push(1);
  q.BlockingPop();
  warper::core::QueryPool pool;
  MutatePool(&pool);
  return 0;
}
