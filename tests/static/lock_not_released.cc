// MUST NOT COMPILE under -Werror=thread-safety: a manually acquired Mutex
// leaves the function still held on one path (the analysis requires locks
// held at function exit to be annotated, and this function is not).
#include "util/mutex.h"

namespace {

warper::util::Mutex g_mu;
int g_value WARPER_GUARDED_BY(g_mu) = 0;

void Leaky(bool flag) {
  g_mu.Lock();
  g_value = 1;
  if (flag) return;  // lock escapes this path
  g_mu.Unlock();
}

}  // namespace

int main() {
  Leaky(false);
  return 0;
}
