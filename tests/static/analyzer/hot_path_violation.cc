// Must-flag fixture for the hot-path-purity rule (tools/warper_analyzer).
//
// Lookup is WARPER_HOT_PATH and (a) calls the WARPER_BLOCKING RebuildCache
// — annotated on its declaration only, proving decl annotations merge into
// the call graph — and (b) reaches a growth-prone push_back through Grow.
// Refuse must stay clean: its only allocation sits inside a
// `return Status::...` statement, the error-exit exemption.
#include <string>
#include <vector>

namespace fixture {

struct Status {
  static Status InvalidArgument(const std::string& message);
  static Status Ok();
};

WARPER_BLOCKING void RebuildCache();

int Grow(std::vector<int>* values) {
  values->push_back(1);
  return static_cast<int>(values->size());
}

WARPER_HOT_PATH int Lookup(std::vector<int>* values) {
  RebuildCache();
  return Grow(values);
}

WARPER_HOT_PATH Status Refuse(int width) {
  if (width < 0) {
    return Status::InvalidArgument("bad width " + std::to_string(width));
  }
  return Status::Ok();
}

}  // namespace fixture
