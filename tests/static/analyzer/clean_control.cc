// Positive control for tools/warper_analyzer: every contract is exercised
// and respected, so the analyzer must report ZERO findings. A failing
// must-flag fixture proves a rule fires; this file proves it fires because
// of the violation, not because annotated code flags unconditionally.
#include <cstddef>
#include <memory>
#include <vector>

namespace fixture {

// determinism-purity: seeded arithmetic only.
WARPER_DETERMINISTIC int SeededSum(const std::vector<int>& values) {
  int sum = 0;
  for (int v : values) sum += v;
  return sum;
}

// hot-path-purity: reads and arithmetic, no locks, no heap.
WARPER_HOT_PATH double Dot(const double* a, const double* b, size_t n) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

// rcu-snapshot-lifetime: the shared_ptr itself is held across use — the
// RCU contract, not a raw borrow.
struct Model {
  double score() const { return 1.0; }
};
struct ModelSnapshot {
  const Model& model() const { return model_; }
  Model model_;
};
struct SnapshotStore {
  std::shared_ptr<const ModelSnapshot> Current() const;
};

double ScoreCurrent(const SnapshotStore& store) {
  auto snap = store.Current();
  return snap->model().score();
}

// result-flow: every ValueOrDie is dominated by an ok() check.
template <typename T>
struct Result {
  bool ok() const;
  T& ValueOrDie();
  int status() const;
};
Result<int> Make();

int GuardedUse() {
  Result<int> r = Make();
  if (!r.ok()) return -1;
  return r.ValueOrDie();
}

}  // namespace fixture
