// Suppression fixture for tools/warper_analyzer: one deliberate violation
// of each rule, each silenced by a WARPER_ANALYZER_SUPPRESS with a tagged
// (#NNN) reason — the analyzer must report ZERO findings. Deleting any one
// suppression resurfaces its violation and fails the golden comparison,
// which is how CI proves every rule is live end-to-end.
#include <memory>
#include <random>
#include <vector>

namespace fixture {

// determinism-purity, suppressed at the sink function: the suppression is
// a barrier, so the annotated root below stays clean too.
unsigned SuppressedEntropy() {
  WARPER_ANALYZER_SUPPRESS("determinism-purity",
                           "fixture: deliberate ambient entropy #10");
  std::random_device rd;
  return rd();
}

WARPER_DETERMINISTIC unsigned Root() { return SuppressedEntropy(); }

// hot-path-purity, suppressed at the root itself.
WARPER_HOT_PATH int HotSuppressed(std::vector<int>* values) {
  WARPER_ANALYZER_SUPPRESS("hot-path-purity",
                           "fixture: amortized growth #10");
  values->push_back(1);
  return static_cast<int>(values->size());
}

// rcu-snapshot-lifetime.
struct Model {
  double score() const { return 1.0; }
};
struct ModelSnapshot {
  const Model& model() const { return model_; }
  Model model_;
};
struct SnapshotStore {
  std::shared_ptr<const ModelSnapshot> Current() const;
};

class Holder {
 public:
  void CacheModelSuppressed() {
    WARPER_ANALYZER_SUPPRESS("rcu-snapshot-lifetime",
                             "fixture: store_ is never republished #10");
    auto snap = store_.Current();
    model_ = &snap->model();
  }

 private:
  SnapshotStore store_;
  const Model* model_ = nullptr;
};

// result-flow.
template <typename T>
struct Result {
  bool ok() const;
  T& ValueOrDie();
};
Result<int> Make();

int ResultSuppressed() {
  WARPER_ANALYZER_SUPPRESS("result-flow",
                           "fixture: Make() is infallible here #10");
  Result<int> r = Make();
  return r.ValueOrDie();
}

}  // namespace fixture
