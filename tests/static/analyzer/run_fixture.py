#!/usr/bin/env python3
"""Runs tools/warper_analyzer over one fixture TU and compares the finding
keys against the fixture's golden expectation.

Usage: run_fixture.py <fixture.cc> <expected.json>

Pinned to the textual frontend so the fixtures gate identically on every
machine (the clang frontend is exercised by CI's whole-repo run instead).
Exit 0 on an exact key match AND the matching analyzer exit code (1 iff
findings were expected); 1 otherwise.
"""

import json
import os
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "..", ".."))


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    fixture = os.path.abspath(sys.argv[1])
    with open(sys.argv[2], encoding="utf-8") as f:
        want = sorted(json.load(f)["expected_keys"])

    fd, report_path = tempfile.mkstemp(suffix=".json", prefix="warper_an_")
    os.close(fd)
    try:
        proc = subprocess.run(
            [sys.executable, os.path.join(REPO_ROOT, "tools",
                                          "warper_analyzer"),
             "--sources", fixture, "--frontend", "textual",
             "--no-baseline", "--report", report_path],
            capture_output=True, text=True, cwd=REPO_ROOT)
        with open(report_path, encoding="utf-8") as f:
            report = json.load(f)
    finally:
        os.unlink(report_path)

    got = sorted({f["key"] for f in report["findings"]})
    ok = True
    for key in [k for k in want if k not in got]:
        print(f"MISSING expected finding: {key}")
        ok = False
    for key in [k for k in got if k not in want]:
        print(f"UNEXPECTED finding: {key}")
        ok = False
    expected_rc = 1 if want else 0
    if proc.returncode != expected_rc:
        print(f"analyzer exit code {proc.returncode}, expected {expected_rc}")
        print(proc.stdout)
        print(proc.stderr, file=sys.stderr)
        ok = False
    if ok:
        name = os.path.basename(fixture)
        print(f"OK {name}: {len(got)} finding(s) match golden")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
