// Must-flag fixture for the rcu-snapshot-lifetime rule
// (tools/warper_analyzer).
//
// CacheModel stores a pointer into an RCU snapshot in a member field — the
// snapshot can be retired by the next Publish() while the field still
// dangles into it. UseAfterBlock borrows a reference out of a snapshot and
// keeps using it across a WARPER_BLOCKING call. HoldsSharedPtr is the
// contrast case: keeping the shared_ptr itself alive is exactly the RCU
// contract and must not flag.
#include <memory>

namespace fixture {

struct Model {
  double score() const { return 1.0; }
};

struct ModelSnapshot {
  const Model& model() const { return model_; }
  Model model_;
};

struct SnapshotStore {
  std::shared_ptr<const ModelSnapshot> Current() const;
};

WARPER_BLOCKING void Pause();

class Holder {
 public:
  void CacheModel() {
    auto snap = store_.Current();
    model_ = &snap->model();
  }

  double HoldsSharedPtr() {
    auto snap = store_.Current();
    Pause();
    return snap->model().score();
  }

 private:
  SnapshotStore store_;
  const Model* model_ = nullptr;
};

double UseAfterBlock(const SnapshotStore& store) {
  auto snap = store.Current();
  const Model& borrowed = snap->model();
  Pause();
  return borrowed.score();
}

}  // namespace fixture
