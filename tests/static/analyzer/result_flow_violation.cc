// Must-flag fixture for the result-flow rule (tools/warper_analyzer).
//
// Unchecked calls ValueOrDie with no dominating ok() check; Temporary
// calls it on an unnamed Result temporary (never checkable). The rest are
// the repo's guarded idioms and must stay clean: if-not-ok-return,
// if-ok-then, WARPER_RETURN_NOT_OK, WARPER_CHECK, and a reassignment that
// correctly re-checks.
namespace fixture {

template <typename T>
struct Result {
  bool ok() const;
  T& ValueOrDie();
  int status() const;
};

Result<int> Make();

int Unchecked() {
  Result<int> r = Make();
  return r.ValueOrDie();
}

int Temporary() { return Make().ValueOrDie(); }

int CheckedNegative() {
  Result<int> r = Make();
  if (!r.ok()) return -1;
  return r.ValueOrDie();
}

int CheckedPositive() {
  Result<int> r = Make();
  if (r.ok()) {
    return r.ValueOrDie();
  }
  return -1;
}

int CheckedMacro() {
  Result<int> r = Make();
  WARPER_CHECK(r.ok());
  return r.ValueOrDie();
}

int CheckedReturnNotOk() {
  Result<int> r = Make();
  WARPER_RETURN_NOT_OK(r.status());
  return r.ValueOrDie();
}

int ReassignedAndRechecked() {
  Result<int> r = Make();
  if (!r.ok()) return -1;
  r = Make();
  if (!r.ok()) return -2;
  return r.ValueOrDie();
}

}  // namespace fixture
