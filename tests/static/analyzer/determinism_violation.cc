// Must-flag fixture for the determinism-purity rule (tools/warper_analyzer).
//
// SeededDraw is WARPER_DETERMINISTIC but reaches std::random_device two
// calls away — the finding must attribute the sink to AmbientEntropy with
// the full SeededDraw -> Helper -> AmbientEntropy chain, proving the rule
// runs over the call graph and not just annotated bodies. SeededNow reads a
// wall clock directly. The analyzer's textual frontend parses this file
// standalone (never compiled), so the annotation macros appear bare.
#include <chrono>
#include <random>

namespace fixture {

unsigned AmbientEntropy() {
  std::random_device rd;
  return rd();
}

unsigned Helper() { return AmbientEntropy() + 1; }

WARPER_DETERMINISTIC unsigned SeededDraw() { return Helper(); }

WARPER_DETERMINISTIC double SeededNow() {
  return static_cast<double>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

}  // namespace fixture
