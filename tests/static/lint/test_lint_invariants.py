#!/usr/bin/env python3
"""Unit tests for tools/lint_invariants.py.

Each test builds a throwaway fixture tree (src/..., tools/metric_names.txt),
runs collect_violations() over it, and asserts on the exact rule tags that
fire. Every rule gets a must-flag case and a must-not-flag case, including
the TenantMetricName / TemplateMetricName dynamic-name contracts and the
drift. metric prefix.
"""

import os
import sys
import tempfile
import unittest

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "..", ".."))
sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))

import lint_invariants  # noqa: E402


class FixtureTree:
    """Minimal repo skeleton: write files, then collect violations."""

    def __init__(self, tmpdir):
        self.root = tmpdir
        self.write("tools/metric_names.txt", "")

    def write(self, rel, text):
        path = os.path.join(self.root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(text)

    def violations(self):
        return lint_invariants.collect_violations(self.root)

    def rules(self):
        out = []
        for v in self.violations():
            tag = v.split("[", 1)[1].split("]", 1)[0]
            out.append(tag)
        return out


class LintInvariantsTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.tree = FixtureTree(self._tmp.name)

    def tearDown(self):
        self._tmp.cleanup()

    # ---- naked-mutex ----

    def test_naked_mutex_flags_std_primitives(self):
        self.tree.write("src/serve/cache.cc",
                        "#include <mutex>\nstd::mutex m;\n")
        self.assertEqual(self.tree.rules(), ["naked-mutex"])

    def test_naked_mutex_flags_lock_wrappers(self):
        self.tree.write("src/serve/cache.cc",
                        "void F() { std::lock_guard<std::mutex> g(m); }\n")
        self.assertIn("naked-mutex", self.tree.rules())

    def test_naked_mutex_allows_wrapper_files_and_util_mutex(self):
        self.tree.write("src/util/mutex.h", "std::mutex raw_;\n")
        self.tree.write("src/serve/cache.cc", "util::Mutex mu_;\n")
        self.assertEqual(self.tree.rules(), [])

    def test_naked_mutex_ignores_comments_and_strings(self):
        self.tree.write("src/a.cc",
                        "// std::mutex in a comment\n"
                        "const char* s = \"std::mutex\";\n")
        self.assertEqual(self.tree.rules(), [])

    # ---- unseeded-rng ----

    def test_unseeded_rng_flags_random_device_and_rand(self):
        self.tree.write("src/a.cc",
                        "std::random_device rd;\nint x = rand();\n")
        self.assertEqual(self.tree.rules(),
                         ["unseeded-rng", "unseeded-rng"])

    def test_unseeded_rng_allows_rng_wrapper_and_seeded_use(self):
        self.tree.write("src/util/rng.cc", "std::random_device entropy;\n")
        self.tree.write("src/a.cc", "util::Rng rng(seed);\n")
        self.assertEqual(self.tree.rules(), [])

    def test_unseeded_rng_does_not_flag_identifier_suffixes(self):
        # strtorand(... ) style identifiers must not match rand(.
        self.tree.write("src/a.cc", "int y = my_rand(3);\n")
        self.assertEqual(self.tree.rules(), [])

    # ---- metric-names (both directions, all enforced prefixes) ----

    def test_metric_registered_but_not_in_registry(self):
        self.tree.write("src/a.cc",
                        'm.GetCounter("serve.requests_total");\n')
        self.assertEqual(self.tree.rules(), ["metric-names"])

    def test_registry_entry_with_no_registration(self):
        self.tree.write("tools/metric_names.txt", "drift.events_applied\n")
        self.tree.write("src/a.cc", "int x = 0;\n")
        self.assertEqual(self.tree.rules(), ["metric-names"])

    def test_metric_names_match_in_both_directions(self):
        self.tree.write("tools/metric_names.txt",
                        "serve.requests_total\nwarper.adapt_steps\n")
        self.tree.write("src/a.cc",
                        'm.GetCounter("serve.requests_total");\n'
                        'm.GetGauge("warper.adapt_steps");\n')
        self.assertEqual(self.tree.rules(), [])

    def test_metric_name_split_across_lines(self):
        self.tree.write("src/a.cc",
                        "m.GetHistogram(\n"
                        '    "drift.window_err");\n')
        self.tree.write("tools/metric_names.txt", "drift.window_err\n")
        self.assertEqual(self.tree.rules(), [])

    def test_tenant_metric_family_enforced(self):
        # The family literal inside TenantMetricName() registers the family.
        self.tree.write("src/a.cc",
                        'auto n = TenantMetricName("serve.tenant.rollbacks",'
                        " id);\n")
        self.assertEqual(self.tree.rules(), ["metric-names"])
        self.tree.write("tools/metric_names.txt", "serve.tenant.rollbacks\n")
        self.assertEqual(self.tree.rules(), [])

    def test_template_metric_family_enforced(self):
        # Same contract for the PR-9 TemplateMetricName() fingerprint names.
        self.tree.write("src/a.cc",
                        'auto n = TemplateMetricName("warper.template.err",'
                        " fp);\n")
        self.assertEqual(self.tree.rules(), ["metric-names"])
        self.tree.write("tools/metric_names.txt", "warper.template.err\n")
        self.assertEqual(self.tree.rules(), [])

    def test_unenforced_prefix_is_ignored(self):
        self.tree.write("src/a.cc", 'm.GetCounter("testonly.thing");\n')
        self.assertEqual(self.tree.rules(), [])

    def test_metrics_outside_src_not_collected(self):
        self.tree.write("bench/b.cc", 'm.GetCounter("serve.bench_only");\n')
        self.assertEqual(self.tree.rules(), [])

    # ---- todo-tags ----

    def test_untagged_todo_flags(self):
        self.tree.write("src/a.cc", "// TODO: fix this\n")
        self.assertEqual(self.tree.rules(), ["todo-tags"])

    def test_tagged_todo_passes(self):
        self.tree.write("src/a.cc", "// TODO(#42): fix this\n")
        self.assertEqual(self.tree.rules(), [])

    # ---- scan scope ----

    def test_scan_covers_all_top_dirs(self):
        for top in ("src", "tests", "bench", "examples"):
            self.tree.write(f"{top}/f.cc", "std::mutex m;\n")
        self.assertEqual(self.tree.rules(), ["naked-mutex"] * 4)

    def test_non_cxx_files_ignored(self):
        self.tree.write("src/notes.md", "std::mutex m; TODO everywhere\n")
        self.assertEqual(self.tree.rules(), [])

    def test_violation_lines_carry_file_and_line(self):
        self.tree.write("src/a.cc", "int x;\nstd::mutex m;\n")
        (v,) = self.tree.violations()
        self.assertTrue(v.startswith("src/a.cc:2: [naked-mutex]"), v)

    # ---- the real repo stays clean ----

    def test_repo_is_clean(self):
        self.assertEqual(lint_invariants.collect_violations(REPO_ROOT), [])


if __name__ == "__main__":
    unittest.main()
