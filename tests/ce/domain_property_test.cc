// Parameterized property suite over the single-table domains: for every
// dataset generator and workload method, canonicalization is idempotent,
// decoded predicates are valid, and annotations stay within [0, rows].
#include <algorithm>

#include <gtest/gtest.h>

#include "ce/query_domain.h"
#include "storage/annotator.h"
#include "storage/datasets.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace warper::ce {
namespace {

struct DomainCase {
  const char* dataset;
  workload::GenMethod method;
};

std::string CaseName(const ::testing::TestParamInfo<DomainCase>& info) {
  return std::string(info.param.dataset) +
         workload::GenMethodName(info.param.method);
}

storage::Table MakeNamed(const std::string& name, size_t rows, uint64_t seed) {
  if (name == "prsa") return storage::MakePrsa(rows, seed);
  if (name == "poker") return storage::MakePoker(rows, seed);
  return storage::MakeHiggs(rows, seed);
}

class DomainPropertySweep : public ::testing::TestWithParam<DomainCase> {};

TEST_P(DomainPropertySweep, RealPredicatesSurviveRoundTrip) {
  storage::Table table = MakeNamed(GetParam().dataset, 3000, 3);
  storage::Annotator annotator(&table);
  SingleTableDomain domain(&annotator);
  util::Rng rng(3);

  std::vector<storage::RangePredicate> preds =
      workload::GenerateWorkload(table, {GetParam().method}, 25, &rng);
  for (const auto& p : preds) {
    std::vector<double> features = domain.FeaturizePredicate(p);
    // Real predicates are already canonical.
    std::vector<double> canon = domain.CanonicalizeFeatures(features);
    for (size_t i = 0; i < features.size(); ++i) {
      EXPECT_NEAR(canon[i], features[i], 1e-9);
    }
    // Decoding reproduces the predicate's cardinality up to boundary ties:
    // w4/w5 bounds sit exactly on data values, and the normalize/denormalize
    // round trip can move them by one ulp, flipping rows tied at the bound.
    double direct = static_cast<double>(annotator.Count(p));
    double via_features = static_cast<double>(domain.Annotate(features));
    EXPECT_NEAR(via_features, direct, std::max(4.0, 0.02 * direct));
  }
}

TEST_P(DomainPropertySweep, NoisyVectorsDecodeToValidQueries) {
  storage::Table table = MakeNamed(GetParam().dataset, 2000, 5);
  storage::Annotator annotator(&table);
  SingleTableDomain domain(&annotator);
  util::Rng rng(5);

  int64_t rows = static_cast<int64_t>(table.NumRows());
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<double> noisy(domain.FeatureDim());
    for (double& v : noisy) v = rng.Normal(0.5, 0.8);  // frequently out of range
    std::vector<double> canon = domain.CanonicalizeFeatures(noisy);
    // Idempotence.
    std::vector<double> twice = domain.CanonicalizeFeatures(canon);
    for (size_t i = 0; i < canon.size(); ++i) {
      EXPECT_NEAR(twice[i], canon[i], 1e-9);
    }
    // Valid count.
    int64_t count = domain.Annotate(canon);
    EXPECT_GE(count, 0);
    EXPECT_LE(count, rows);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Domains, DomainPropertySweep,
    ::testing::Values(DomainCase{"prsa", workload::GenMethod::kW1},
                      DomainCase{"prsa", workload::GenMethod::kW3},
                      DomainCase{"poker", workload::GenMethod::kW1},
                      DomainCase{"poker", workload::GenMethod::kW5},
                      DomainCase{"higgs", workload::GenMethod::kW2},
                      DomainCase{"higgs", workload::GenMethod::kW4}),
    CaseName);

}  // namespace
}  // namespace warper::ce
