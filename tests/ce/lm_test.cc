#include "ce/lm.h"

#include <gtest/gtest.h>

#include "ce/metrics.h"
#include "ce/query_domain.h"
#include "storage/annotator.h"
#include "storage/datasets.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace warper::ce {
namespace {

// Shared fixture data: an annotated workload on a PRSA-like table.
struct LmTestData {
  storage::Table table = storage::MakePrsa(8000, 42);
  storage::Annotator annotator{&table};
  SingleTableDomain domain{&annotator};
  std::vector<LabeledExample> train, test;

  LmTestData() {
    util::Rng rng(42);
    auto make = [&](size_t n) {
      std::vector<storage::RangePredicate> preds = workload::GenerateWorkload(
          table, {workload::GenMethod::kW1, workload::GenMethod::kW3}, n, &rng);
      std::vector<int64_t> counts = annotator.BatchCount(preds);
      std::vector<LabeledExample> out(n);
      for (size_t i = 0; i < n; ++i) {
        out[i] = {domain.FeaturizePredicate(preds[i]), counts[i]};
      }
      return out;
    };
    train = make(900);
    test = make(150);
  }
};

LmTestData& Data() {
  static LmTestData* data = new LmTestData();
  return *data;
}

template <typename ModelT>
double TrainAndScore(ModelT& model) {
  nn::Matrix x;
  std::vector<double> y;
  ExamplesToMatrix(Data().train, &x, &y);
  model.Train(x, y);
  return ModelGmq(model, Data().test);
}

TEST(LmMlpTest, LearnsUsefulEstimates) {
  LmMlp model(Data().domain.FeatureDim(), LmMlpConfig{}, 1);
  EXPECT_FALSE(model.trained());
  double gmq = TrainAndScore(model);
  EXPECT_TRUE(model.trained());
  // A constant-guess model lands far above this on the mixed workload.
  EXPECT_LT(gmq, 5.0);
  EXPECT_GE(gmq, 1.0);
}

TEST(LmMlpTest, FineTuneImprovesOnNewDistribution) {
  LmMlp model(Data().domain.FeatureDim(), LmMlpConfig{}, 2);
  TrainAndScore(model);

  // Build a drifted workload (w2) and fine-tune on half of it.
  util::Rng rng(7);
  std::vector<storage::RangePredicate> preds = workload::GenerateWorkload(
      Data().table, {workload::GenMethod::kW2}, 300, &rng);
  std::vector<int64_t> counts = Data().annotator.BatchCount(preds);
  std::vector<LabeledExample> drifted(300);
  for (size_t i = 0; i < 300; ++i) {
    drifted[i] = {Data().domain.FeaturizePredicate(preds[i]), counts[i]};
  }
  std::vector<LabeledExample> finetune_set(drifted.begin(),
                                           drifted.begin() + 150);
  std::vector<LabeledExample> eval_set(drifted.begin() + 150, drifted.end());

  double before = ModelGmq(model, eval_set);
  nn::Matrix x;
  std::vector<double> y;
  ExamplesToMatrix(finetune_set, &x, &y);
  model.Update(x, y);
  double after = ModelGmq(model, eval_set);
  EXPECT_LT(after, before * 1.05);  // should not get meaningfully worse
}

TEST(LmMlpTest, UpdateModeIsFineTune) {
  LmMlp model(4, LmMlpConfig{}, 3);
  EXPECT_EQ(model.update_mode(), UpdateMode::kFineTune);
  EXPECT_EQ(model.Name(), "LM-mlp");
}

TEST(LmGbtTest, LearnsUsefulEstimates) {
  LmGbt model(Data().domain.FeatureDim(), LmGbtConfig{}, 4);
  double gmq = TrainAndScore(model);
  EXPECT_LT(gmq, 6.0);
  EXPECT_EQ(model.update_mode(), UpdateMode::kRetrain);
  EXPECT_EQ(model.Name(), "LM-gbt");
}

TEST(LmGbtTest, UpdateRetrainsFromGivenCorpus) {
  LmGbt model(Data().domain.FeatureDim(), LmGbtConfig{}, 5);
  TrainAndScore(model);
  // Re-train on a tiny corpus; predictions must now reflect only it.
  nn::Matrix x(4, Data().domain.FeatureDim(), 0.5);
  std::vector<double> y(4, CardToTarget(1000));
  model.Update(x, y);
  std::vector<double> t = model.EstimateTargets(x);
  for (double v : t) EXPECT_NEAR(v, CardToTarget(1000), 0.5);
}

TEST(LmKernelTest, PolyAndRbfVariants) {
  auto ply = MakeLmPly(Data().domain.FeatureDim(), 6);
  auto rbf = MakeLmRbf(Data().domain.FeatureDim(), 6);
  EXPECT_EQ(ply->Name(), "LM-ply");
  EXPECT_EQ(rbf->Name(), "LM-rbf");
  EXPECT_EQ(ply->update_mode(), UpdateMode::kRetrain);

  nn::Matrix x;
  std::vector<double> y;
  ExamplesToMatrix(Data().train, &x, &y);
  ply->Train(x, y);
  rbf->Train(x, y);
  EXPECT_LT(ModelGmq(*ply, Data().test), 8.0);
  EXPECT_LT(ModelGmq(*rbf, Data().test), 8.0);
}

TEST(LmTest, EstimateCardinalityNonNegative) {
  LmMlp model(Data().domain.FeatureDim(), LmMlpConfig{}, 7);
  TrainAndScore(model);
  util::Rng rng(9);
  for (int i = 0; i < 20; ++i) {
    std::vector<double> features(Data().domain.FeatureDim());
    for (double& f : features) f = rng.Uniform(0, 1);
    EXPECT_GE(model.EstimateCardinality(
                  Data().domain.CanonicalizeFeatures(features)),
              0.0);
  }
}

TEST(LmTest, DeterministicGivenSeed) {
  LmMlp a(Data().domain.FeatureDim(), LmMlpConfig{}, 11);
  LmMlp b(Data().domain.FeatureDim(), LmMlpConfig{}, 11);
  TrainAndScore(a);
  TrainAndScore(b);
  nn::Matrix x;
  std::vector<double> y;
  ExamplesToMatrix(Data().test, &x, &y);
  std::vector<double> ta = a.EstimateTargets(x);
  std::vector<double> tb = b.EstimateTargets(x);
  for (size_t i = 0; i < ta.size(); ++i) EXPECT_DOUBLE_EQ(ta[i], tb[i]);
}

TEST(LmDeathTest, EstimateBeforeTraining) {
  LmMlp model(4, LmMlpConfig{}, 12);
  nn::Matrix x(1, 4);
  EXPECT_DEATH(model.EstimateTargets(x), "WARPER_CHECK");
}

}  // namespace
}  // namespace warper::ce
