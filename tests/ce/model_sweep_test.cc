// Cross-product sweep: every estimator family × every dataset generator.
// Each trained model must clearly beat a constant (mean-target) predictor on
// held-out queries from the training distribution — the minimum bar for a
// usable learned CE model, checked uniformly across the whole model zoo.
#include <gtest/gtest.h>

#include "ce/lm.h"
#include "ce/metrics.h"
#include "ce/mscn.h"
#include "ce/query_domain.h"
#include "storage/annotator.h"
#include "storage/datasets.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace warper::ce {
namespace {

struct SweepCase {
  const char* model;
  const char* dataset;
};

std::string CaseName(const ::testing::TestParamInfo<SweepCase>& info) {
  std::string name = std::string(info.param.model) + "_" + info.param.dataset;
  for (char& ch : name) {
    if (ch == '-') ch = '_';
  }
  return name;
}

storage::Table MakeNamed(const std::string& name, uint64_t seed) {
  if (name == std::string("prsa")) return storage::MakePrsa(6000, seed);
  if (name == std::string("poker")) return storage::MakePoker(6000, seed);
  return storage::MakeHiggs(6000, seed);
}

std::unique_ptr<CardinalityEstimator> MakeModel(const std::string& name,
                                                size_t feature_dim,
                                                uint64_t seed) {
  if (name == "LM-mlp") {
    return std::make_unique<LmMlp>(feature_dim, LmMlpConfig{}, seed);
  }
  if (name == "LM-gbt") {
    return std::make_unique<LmGbt>(feature_dim, LmGbtConfig{}, seed);
  }
  if (name == "LM-ply") return MakeLmPly(feature_dim, seed);
  if (name == "LM-rbf") return MakeLmRbf(feature_dim, seed);
  MscnConfig config = MscnConfig::SingleTable(feature_dim / 2);
  config.train_epochs = 40;
  return std::make_unique<Mscn>(config, seed);
}

class ModelDatasetSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ModelDatasetSweep, BeatsMeanPredictor) {
  storage::Table table = MakeNamed(GetParam().dataset, 17);
  storage::Annotator annotator(&table);
  SingleTableDomain domain(&annotator);
  util::Rng rng(17);

  auto make = [&](size_t n) {
    std::vector<storage::RangePredicate> preds = workload::GenerateWorkload(
        table, {workload::GenMethod::kW1, workload::GenMethod::kW3}, n, &rng);
    std::vector<int64_t> counts = annotator.BatchCount(preds);
    std::vector<LabeledExample> out(n);
    for (size_t i = 0; i < n; ++i) {
      out[i] = {domain.FeaturizePredicate(preds[i]), counts[i]};
    }
    return out;
  };
  std::vector<LabeledExample> train = make(600);
  std::vector<LabeledExample> test = make(120);

  std::unique_ptr<CardinalityEstimator> model =
      MakeModel(GetParam().model, domain.FeatureDim(), 17);
  nn::Matrix x;
  std::vector<double> y;
  ExamplesToMatrix(train, &x, &y);
  model->Train(x, y);
  ASSERT_TRUE(model->trained());

  // Constant predictor at the mean log-card target.
  double mean_target = 0.0;
  for (double t : y) mean_target += t;
  mean_target /= static_cast<double>(y.size());
  std::vector<double> const_est, actual;
  for (const auto& e : test) {
    const_est.push_back(TargetToCard(mean_target));
    actual.push_back(static_cast<double>(e.cardinality));
  }
  double baseline = Gmq(const_est, actual);
  double gmq = ModelGmq(*model, test);

  EXPECT_LT(gmq, baseline) << "model " << model->Name() << " gmq=" << gmq
                           << " vs constant " << baseline;
  EXPECT_GE(gmq, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, ModelDatasetSweep,
    ::testing::Values(SweepCase{"LM-mlp", "prsa"}, SweepCase{"LM-mlp", "poker"},
                      SweepCase{"LM-mlp", "higgs"}, SweepCase{"LM-gbt", "prsa"},
                      SweepCase{"LM-gbt", "higgs"}, SweepCase{"LM-ply", "prsa"},
                      SweepCase{"LM-rbf", "prsa"}, SweepCase{"MSCN", "prsa"},
                      SweepCase{"MSCN", "higgs"}),
    CaseName);

}  // namespace
}  // namespace warper::ce
