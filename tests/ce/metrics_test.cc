#include "ce/metrics.h"

#include <gtest/gtest.h>

namespace warper::ce {
namespace {

TEST(QErrorTest, PerfectEstimateIsOne) {
  EXPECT_DOUBLE_EQ(QError(100.0, 100.0), 1.0);
}

TEST(QErrorTest, SymmetricInDirection) {
  EXPECT_DOUBLE_EQ(QError(50.0, 200.0), QError(200.0, 50.0));
  EXPECT_DOUBLE_EQ(QError(50.0, 200.0), 4.0);
}

TEST(QErrorTest, ThetaFloorsSmallCardinalities) {
  // With θ=10, estimates below 10 are treated as 10 (paper §4.1).
  EXPECT_DOUBLE_EQ(QError(0.0, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(QError(1.0, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(QError(0.0, 0.0), 1.0);
}

TEST(QErrorTest, AlwaysAtLeastOne) {
  for (double est : {0.0, 3.0, 17.0, 1000.0}) {
    for (double act : {0.0, 9.0, 55.0, 1e6}) {
      EXPECT_GE(QError(est, act), 1.0);
    }
  }
}

TEST(GmqTest, GeometricMeanOfQErrors) {
  // q-errors: 2 and 8 → GMQ 4.
  double gmq = Gmq({20.0, 80.0}, {40.0, 10.0});
  EXPECT_NEAR(gmq, 4.0, 1e-9);
}

TEST(GmqTest, AllPerfectIsOne) {
  EXPECT_DOUBLE_EQ(Gmq({15.0, 100.0}, {15.0, 100.0}), 1.0);
}

TEST(GmqDeathTest, EmptyInput) {
  EXPECT_DEATH(Gmq({}, {}), "WARPER_CHECK");
}

TEST(GmqDeathTest, MismatchedSizes) {
  EXPECT_DEATH(Gmq({1.0}, {1.0, 2.0}), "WARPER_CHECK");
}

}  // namespace
}  // namespace warper::ce
