#include "ce/query_domain.h"

#include <gtest/gtest.h>

#include "storage/datasets.h"
#include "util/rng.h"
#include "workload/generator.h"
#include "workload/join_workload.h"

namespace warper::ce {
namespace {

TEST(SingleTableDomainTest, FeatureDimAndName) {
  storage::Table t = storage::MakePrsa(1000, 1);
  storage::Annotator annotator(&t);
  SingleTableDomain domain(&annotator);
  EXPECT_EQ(domain.FeatureDim(), 16u);  // 2 × 8 columns
  EXPECT_EQ(domain.Name(), "single_table:prsa");
  EXPECT_EQ(domain.MaxCardinality(), 1000);
}

TEST(SingleTableDomainTest, AnnotateMatchesAnnotator) {
  storage::Table t = storage::MakePrsa(2000, 2);
  storage::Annotator annotator(&t);
  SingleTableDomain domain(&annotator);
  util::Rng rng(3);
  std::vector<storage::RangePredicate> preds = workload::GenerateWorkload(
      t, {workload::GenMethod::kW3}, 10, &rng);
  for (const auto& p : preds) {
    EXPECT_EQ(domain.Annotate(domain.FeaturizePredicate(p)),
              annotator.Count(p));
  }
}

TEST(SingleTableDomainTest, CanonicalizeIsIdempotent) {
  storage::Table t = storage::MakeHiggs(1000, 3);
  storage::Annotator annotator(&t);
  SingleTableDomain domain(&annotator);
  util::Rng rng(5);
  for (int i = 0; i < 30; ++i) {
    std::vector<double> noisy(domain.FeatureDim());
    for (double& v : noisy) v = rng.Uniform(-0.5, 1.5);
    std::vector<double> once = domain.CanonicalizeFeatures(noisy);
    std::vector<double> twice = domain.CanonicalizeFeatures(once);
    for (size_t j = 0; j < once.size(); ++j) {
      EXPECT_NEAR(once[j], twice[j], 1e-12);
    }
    // Canonical features are valid: low ≤ high in [0, 1].
    size_t d = domain.FeatureDim() / 2;
    for (size_t c = 0; c < d; ++c) {
      EXPECT_GE(once[c], 0.0);
      EXPECT_LE(once[d + c], 1.0);
      EXPECT_LE(once[c], once[d + c] + 1e-12);
    }
  }
}

TEST(SingleTableDomainTest, BatchAnnotateMatchesSingle) {
  storage::Table t = storage::MakePoker(2000, 4);
  storage::Annotator annotator(&t);
  SingleTableDomain domain(&annotator);
  util::Rng rng(7);
  std::vector<std::vector<double>> features;
  for (const auto& p : workload::GenerateWorkload(
           t, {workload::GenMethod::kW1}, 12, &rng)) {
    features.push_back(domain.FeaturizePredicate(p));
  }
  std::vector<int64_t> batch = domain.AnnotateBatch(features);
  for (size_t i = 0; i < features.size(); ++i) {
    EXPECT_EQ(batch[i], domain.Annotate(features[i]));
  }
}

TEST(StarJoinDomainTest, FeatureLayout) {
  storage::ImdbTables tables = storage::MakeImdb(200, 5);
  storage::StarSchema schema = tables.Schema();
  storage::JoinAnnotator annotator(&schema);
  StarJoinDomain domain(&annotator);
  // 2 join bits + 2·4 title + 2·3 cast_info + 2·3 movie_companies = 22.
  EXPECT_EQ(domain.FeatureDim(), 22u);
  EXPECT_EQ(domain.num_facts(), 2u);
}

TEST(StarJoinDomainTest, FeaturizeDecodeRoundTrip) {
  storage::ImdbTables tables = storage::MakeImdb(200, 6);
  storage::StarSchema schema = tables.Schema();
  storage::JoinAnnotator annotator(&schema);
  StarJoinDomain domain(&annotator);
  util::Rng rng(9);
  std::vector<storage::JoinQuery> queries =
      workload::GenerateJoinWorkload(schema, workload::GenMethod::kW1, 20,
                                     &rng);
  for (const auto& q : queries) {
    storage::JoinQuery decoded = domain.DecodeQuery(domain.FeaturizeQuery(q));
    EXPECT_EQ(decoded.join_mask, q.join_mask);
    for (size_t c = 0; c < q.center_pred.NumColumns(); ++c) {
      EXPECT_NEAR(decoded.center_pred.low[c], q.center_pred.low[c], 1e-9);
      EXPECT_NEAR(decoded.center_pred.high[c], q.center_pred.high[c], 1e-9);
    }
  }
}

TEST(StarJoinDomainTest, DecodeForcesAtLeastOneJoin) {
  storage::ImdbTables tables = storage::MakeImdb(100, 7);
  storage::StarSchema schema = tables.Schema();
  storage::JoinAnnotator annotator(&schema);
  StarJoinDomain domain(&annotator);
  std::vector<double> features(domain.FeatureDim(), 0.4);
  features[0] = 0.1;  // both join bits below the 0.5 threshold
  features[1] = 0.3;
  storage::JoinQuery q = domain.DecodeQuery(domain.CanonicalizeFeatures(features));
  EXPECT_EQ(q.join_mask, 2u);  // highest bit value wins
}

TEST(StarJoinDomainTest, AnnotateMatchesJoinAnnotator) {
  storage::ImdbTables tables = storage::MakeImdb(150, 8);
  storage::StarSchema schema = tables.Schema();
  storage::JoinAnnotator annotator(&schema);
  StarJoinDomain domain(&annotator);
  util::Rng rng(11);
  std::vector<storage::JoinQuery> queries =
      workload::GenerateJoinWorkload(schema, workload::GenMethod::kW3, 6, &rng);
  for (const auto& q : queries) {
    EXPECT_EQ(domain.Annotate(domain.FeaturizeQuery(q)), annotator.Count(q));
  }
}

}  // namespace
}  // namespace warper::ce
