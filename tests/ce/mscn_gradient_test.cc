// Finite-difference validation of MSCN's composite backpropagation: the
// gradient must be correct through the output MLP, the concat split, the
// mean-pool / unpool pair, and the shared element module. A single training
// step from a fixed parameter vector must reduce the loss in the direction
// the analytic gradient predicts.
#include "ce/mscn.h"

#include <cmath>

#include <gtest/gtest.h>

#include "ce/estimator.h"
#include "util/rng.h"

namespace warper::ce {
namespace {

// Loss of a fresh model trained zero steps — i.e. the forward MSE — for a
// fixed (x, y) batch and seed.
double ForwardMse(Mscn& model, const nn::Matrix& x,
                  const std::vector<double>& y) {
  std::vector<double> pred = model.EstimateTargets(x);
  double loss = 0.0;
  for (size_t i = 0; i < y.size(); ++i) {
    double d = pred[i] - y[i];
    loss += d * d;
  }
  return loss / static_cast<double>(y.size());
}

MscnConfig TinyConfig(size_t join_bits) {
  MscnConfig config = join_bits == 0
                          ? MscnConfig::SingleTable(3)
                          : MscnConfig::StarJoin(2, {2});
  config.hidden_units = 8;
  config.batch_size = 4;
  config.train_epochs = 1;
  return config;
}

class MscnGradientSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(MscnGradientSweep, OneEpochReducesTrainingLoss) {
  size_t join_bits = GetParam();
  MscnConfig config = TinyConfig(join_bits);
  util::Rng rng(3);

  nn::Matrix x(16, config.feature_dim);
  std::vector<double> y(16);
  for (size_t r = 0; r < 16; ++r) {
    for (size_t c = 0; c < config.feature_dim; ++c) {
      x.At(r, c) = rng.Uniform(0, 1);
    }
    // A deterministic nonlinear target of the features.
    y[r] = 2.0 * x.At(r, 0) + x.At(r, config.feature_dim - 1) +
           std::sin(3.0 * x.At(r, 1));
  }

  Mscn model(config, 7);
  model.Train(x, y);  // 1 epoch
  double after_one = ForwardMse(model, x, y);

  Mscn longer(config, 7);
  MscnConfig more = config;
  more.train_epochs = 40;
  Mscn model40(more, 7);
  model40.Train(x, y);
  double after_forty = ForwardMse(model40, x, y);

  // Gradient direction is descent: more epochs → lower training loss.
  EXPECT_LT(after_forty, after_one);
  (void)longer;
}

TEST_P(MscnGradientSweep, TrainingLossDecreasesMonotonicallyEnough) {
  size_t join_bits = GetParam();
  MscnConfig config = TinyConfig(join_bits);
  util::Rng rng(11);
  nn::Matrix x(24, config.feature_dim);
  std::vector<double> y(24);
  for (size_t r = 0; r < 24; ++r) {
    for (size_t c = 0; c < config.feature_dim; ++c) {
      x.At(r, c) = rng.Uniform(0, 1);
    }
    y[r] = x.At(r, 0) - 0.5 * x.At(r, config.feature_dim - 1);
  }
  // Sample the loss along the epoch axis; at least 3 of 4 increments must
  // improve (SGD noise tolerance).
  std::vector<double> losses;
  for (int epochs : {1, 5, 10, 20, 40}) {
    MscnConfig c = config;
    c.train_epochs = epochs;
    Mscn model(c, 13);
    model.Train(x, y);
    losses.push_back(ForwardMse(model, x, y));
  }
  int improved = 0;
  for (size_t i = 1; i < losses.size(); ++i) {
    improved += losses[i] < losses[i - 1] ? 1 : 0;
  }
  EXPECT_GE(improved, 3);
  EXPECT_LT(losses.back(), losses.front());
}

INSTANTIATE_TEST_SUITE_P(Variants, MscnGradientSweep,
                         ::testing::Values(0u, 1u),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return info.param == 0 ? std::string("SingleTable")
                                                  : std::string("StarJoin");
                         });

}  // namespace
}  // namespace warper::ce
