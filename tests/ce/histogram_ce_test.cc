#include "ce/histogram_ce.h"

#include <gtest/gtest.h>

#include "ce/metrics.h"
#include "storage/annotator.h"
#include "storage/datasets.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace warper::ce {
namespace {

storage::Table UniformTable(size_t rows, uint64_t seed) {
  util::Rng rng(seed);
  storage::Table t("uniform");
  t.AddColumn("a", storage::ColumnType::kNumeric);
  t.AddColumn("b", storage::ColumnType::kNumeric);
  for (size_t i = 0; i < rows; ++i) {
    t.AppendRow({rng.Uniform(0, 100), rng.Uniform(0, 100)});
  }
  return t;
}

TEST(HistogramCeTest, FullRangeEstimatesAllRows) {
  storage::Table t = UniformTable(5000, 1);
  HistogramEstimator hist(t);
  storage::RangePredicate full = storage::RangePredicate::FullRange(t);
  EXPECT_NEAR(hist.Estimate(full), 5000.0, 1.0);
}

TEST(HistogramCeTest, UniformSingleColumnAccurate) {
  storage::Table t = UniformTable(20000, 2);
  HistogramEstimator hist(t);
  storage::RangePredicate p = storage::RangePredicate::FullRange(t);
  p.low[0] = 25.0;
  p.high[0] = 75.0;
  storage::Annotator annotator(&t);
  double actual = static_cast<double>(annotator.Count(p));
  EXPECT_NEAR(hist.Estimate(p), actual, 0.05 * actual);
}

TEST(HistogramCeTest, SelectivityMonotoneInRangeWidth) {
  storage::Table t = storage::MakePrsa(10000, 3);
  HistogramEstimator hist(t);
  size_t pm25 = t.ColumnIndex("pm25").ValueOrDie();
  double lo = t.column(pm25).Min();
  double narrow = hist.ColumnSelectivity(pm25, lo, lo + 10.0);
  double wide = hist.ColumnSelectivity(pm25, lo, lo + 100.0);
  EXPECT_LE(narrow, wide);
  EXPECT_GE(narrow, 0.0);
  EXPECT_LE(wide, 1.0);
}

TEST(HistogramCeTest, DisjointRangeIsZero) {
  storage::Table t = UniformTable(1000, 5);
  HistogramEstimator hist(t);
  EXPECT_DOUBLE_EQ(hist.ColumnSelectivity(0, 500.0, 600.0), 0.0);
  EXPECT_DOUBLE_EQ(hist.ColumnSelectivity(0, -50.0, -10.0), 0.0);
}

TEST(HistogramCeTest, InvertedRangeIsZero) {
  storage::Table t = UniformTable(1000, 7);
  HistogramEstimator hist(t);
  EXPECT_DOUBLE_EQ(hist.ColumnSelectivity(0, 80.0, 20.0), 0.0);
}

TEST(HistogramCeTest, EquiDepthHandlesHeavyTails) {
  // The PRSA pm2.5 column is log-normal; equi-depth buckets must still give
  // sane estimates for ranges in the dense low region.
  storage::Table t = storage::MakePrsa(20000, 9);
  storage::Annotator annotator(&t);
  HistogramEstimator hist(t, 128);
  size_t pm25 = t.ColumnIndex("pm25").ValueOrDie();

  storage::RangePredicate p = storage::RangePredicate::FullRange(t);
  p.low[pm25] = t.column(pm25).Min();
  p.high[pm25] = 60.0;  // dense region
  double actual = static_cast<double>(annotator.Count(p));
  ASSERT_GT(actual, 100.0);
  EXPECT_NEAR(hist.Estimate(p), actual, 0.15 * actual);
}

TEST(HistogramCeTest, AviMissesCorrelation) {
  // Two perfectly correlated columns: AVI under-estimates the conjunction
  // by roughly the extra selectivity factor — the classical failure mode
  // learned CE models fix.
  util::Rng rng(11);
  storage::Table t("corr");
  t.AddColumn("x", storage::ColumnType::kNumeric);
  t.AddColumn("y", storage::ColumnType::kNumeric);
  for (int i = 0; i < 20000; ++i) {
    double v = rng.Uniform(0, 100);
    t.AppendRow({v, v});
  }
  HistogramEstimator hist(t);
  storage::Annotator annotator(&t);

  storage::RangePredicate p = storage::RangePredicate::FullRange(t);
  p.low[0] = p.low[1] = 0.0;
  p.high[0] = p.high[1] = 25.0;  // true sel 25%, AVI says 6.25%
  double actual = static_cast<double>(annotator.Count(p));
  double estimate = hist.Estimate(p);
  EXPECT_LT(estimate, 0.5 * actual);
  EXPECT_NEAR(estimate, 0.0625 * 20000.0, 0.02 * 20000.0);
}

TEST(HistogramCeTest, QErrorReasonableOnRealWorkload) {
  storage::Table t = storage::MakeHiggs(15000, 13);
  storage::Annotator annotator(&t);
  HistogramEstimator hist(t, 128);
  util::Rng rng(13);

  workload::GeneratorOptions opts;
  opts.max_constrained_cols = 2;
  std::vector<storage::RangePredicate> preds =
      workload::GenerateWorkload(t, {workload::GenMethod::kW1}, 60, &rng, opts);
  std::vector<int64_t> counts = annotator.BatchCount(preds);
  std::vector<double> est, act;
  for (size_t i = 0; i < preds.size(); ++i) {
    est.push_back(hist.Estimate(preds[i]));
    act.push_back(static_cast<double>(counts[i]));
  }
  // 1-2 column predicates on mostly-independent columns: AVI histograms
  // should land within a modest GMQ.
  EXPECT_LT(Gmq(est, act), 4.0);
}

TEST(HistogramCeDeathTest, EmptyTableRejected) {
  storage::Table t("empty");
  t.AddColumn("a", storage::ColumnType::kNumeric);
  EXPECT_DEATH(HistogramEstimator{t}, "WARPER_CHECK");
}

}  // namespace
}  // namespace warper::ce
