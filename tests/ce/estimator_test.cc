#include "ce/estimator.h"

#include <cmath>

#include <gtest/gtest.h>

namespace warper::ce {
namespace {

TEST(TargetTransformTest, RoundTrip) {
  for (int64_t card : {0LL, 1LL, 10LL, 123456LL}) {
    EXPECT_NEAR(TargetToCard(CardToTarget(card)), static_cast<double>(card),
                1e-6 * std::max<double>(1.0, static_cast<double>(card)));
  }
}

TEST(TargetTransformTest, ZeroMapsToZero) {
  EXPECT_DOUBLE_EQ(CardToTarget(0), 0.0);
  EXPECT_DOUBLE_EQ(TargetToCard(0.0), 0.0);
}

TEST(TargetTransformTest, NegativeTargetClampsToZero) {
  EXPECT_DOUBLE_EQ(TargetToCard(-3.0), 0.0);
}

TEST(TargetTransformDeathTest, NegativeCardinality) {
  EXPECT_DEATH(CardToTarget(-1), "WARPER_CHECK");
}

TEST(ExamplesToMatrixTest, StacksAndTransforms) {
  std::vector<LabeledExample> examples = {
      {{0.1, 0.2}, 99},
      {{0.3, 0.4}, 0},
  };
  nn::Matrix x;
  std::vector<double> y;
  ExamplesToMatrix(examples, &x, &y);
  EXPECT_EQ(x.rows(), 2u);
  EXPECT_EQ(x.cols(), 2u);
  EXPECT_DOUBLE_EQ(x.At(1, 0), 0.3);
  EXPECT_DOUBLE_EQ(y[0], std::log1p(99.0));
  EXPECT_DOUBLE_EQ(y[1], 0.0);
}

TEST(ExamplesToMatrixDeathTest, InconsistentWidths) {
  std::vector<LabeledExample> examples = {{{0.1}, 1}, {{0.1, 0.2}, 2}};
  nn::Matrix x;
  std::vector<double> y;
  EXPECT_DEATH(ExamplesToMatrix(examples, &x, &y), "WARPER_CHECK");
}

}  // namespace
}  // namespace warper::ce
