#include "ce/mscn.h"

#include <gtest/gtest.h>

#include "ce/metrics.h"
#include "ce/query_domain.h"
#include "storage/annotator.h"
#include "storage/datasets.h"
#include "util/rng.h"
#include "workload/generator.h"
#include "workload/join_workload.h"

namespace warper::ce {
namespace {

TEST(MscnConfigTest, SingleTableLayout) {
  MscnConfig config = MscnConfig::SingleTable(8);
  EXPECT_EQ(config.segments.size(), 1u);
  EXPECT_EQ(config.segments[0].num_cols, 8u);
  EXPECT_EQ(config.feature_dim, 16u);
  EXPECT_EQ(config.num_join_bits, 0u);
}

TEST(MscnConfigTest, StarJoinLayout) {
  MscnConfig config = MscnConfig::StarJoin(4, {3, 3});
  EXPECT_EQ(config.num_join_bits, 2u);
  ASSERT_EQ(config.segments.size(), 3u);
  EXPECT_EQ(config.segments[0].offset, 2u);       // after join bits
  EXPECT_EQ(config.segments[1].offset, 10u);      // 2 + 2·4
  EXPECT_EQ(config.segments[2].offset, 16u);      // 10 + 2·3
  EXPECT_EQ(config.feature_dim, 22u);
}

TEST(MscnTest, SetSizeIsTotalColumns) {
  Mscn single(MscnConfig::SingleTable(8), 1);
  EXPECT_EQ(single.PredicateSetSize(), 8u);
  Mscn join(MscnConfig::StarJoin(4, {3, 3}), 1);
  EXPECT_EQ(join.PredicateSetSize(), 10u);
}

TEST(MscnTest, SingleTableLearnsEstimates) {
  storage::Table table = storage::MakePrsa(6000, 3);
  storage::Annotator annotator(&table);
  SingleTableDomain domain(&annotator);
  util::Rng rng(3);

  auto make = [&](size_t n) {
    std::vector<storage::RangePredicate> preds = workload::GenerateWorkload(
        table, {workload::GenMethod::kW1, workload::GenMethod::kW3}, n, &rng);
    std::vector<int64_t> counts = annotator.BatchCount(preds);
    std::vector<LabeledExample> out(n);
    for (size_t i = 0; i < n; ++i) {
      out[i] = {domain.FeaturizePredicate(preds[i]), counts[i]};
    }
    return out;
  };
  std::vector<LabeledExample> train = make(700);
  std::vector<LabeledExample> test = make(120);

  MscnConfig config = MscnConfig::SingleTable(table.NumColumns());
  config.train_epochs = 40;
  Mscn model(config, 5);
  nn::Matrix x;
  std::vector<double> y;
  ExamplesToMatrix(train, &x, &y);
  model.Train(x, y);
  EXPECT_TRUE(model.trained());
  EXPECT_LT(ModelGmq(model, test), 6.0);
  EXPECT_EQ(model.update_mode(), UpdateMode::kFineTune);
}

TEST(MscnTest, JoinVariantLearnsEstimates) {
  storage::ImdbTables tables = storage::MakeImdb(600, 5);
  storage::StarSchema schema = tables.Schema();
  storage::JoinAnnotator annotator(&schema);
  StarJoinDomain domain(&annotator);
  util::Rng rng(7);

  auto make = [&](size_t n) {
    std::vector<storage::JoinQuery> queries = workload::GenerateJoinWorkload(
        schema, workload::GenMethod::kW1, n, &rng);
    std::vector<int64_t> counts = annotator.BatchCount(queries);
    std::vector<LabeledExample> out(n);
    for (size_t i = 0; i < n; ++i) {
      out[i] = {domain.FeaturizeQuery(queries[i]), counts[i]};
    }
    return out;
  };
  std::vector<LabeledExample> train = make(500);
  std::vector<LabeledExample> test = make(100);

  MscnConfig config = MscnConfig::StarJoin(
      schema.center->NumColumns(),
      {schema.facts[0].table->NumColumns(),
       schema.facts[1].table->NumColumns()});
  config.train_epochs = 40;
  Mscn model(config, 9);
  nn::Matrix x;
  std::vector<double> y;
  ExamplesToMatrix(train, &x, &y);
  model.Train(x, y);

  // Join cardinalities span many orders of magnitude; require the model to
  // clearly beat a mean-predictor baseline.
  double mean_target = 0.0;
  for (double t : y) mean_target += t;
  mean_target /= static_cast<double>(y.size());
  std::vector<double> est, act;
  for (const auto& e : test) {
    est.push_back(TargetToCard(mean_target));
    act.push_back(static_cast<double>(e.cardinality));
  }
  double baseline_gmq = Gmq(est, act);
  EXPECT_LT(ModelGmq(model, test), baseline_gmq);
}

TEST(MscnTest, FineTuneDoesNotDegradeInDistribution) {
  storage::Table table = storage::MakePoker(4000, 7);
  storage::Annotator annotator(&table);
  SingleTableDomain domain(&annotator);
  util::Rng rng(11);

  std::vector<storage::RangePredicate> preds = workload::GenerateWorkload(
      table, {workload::GenMethod::kW1}, 400, &rng);
  std::vector<int64_t> counts = annotator.BatchCount(preds);
  std::vector<LabeledExample> examples(400);
  for (size_t i = 0; i < 400; ++i) {
    examples[i] = {domain.FeaturizePredicate(preds[i]), counts[i]};
  }
  std::vector<LabeledExample> train(examples.begin(), examples.begin() + 300);
  std::vector<LabeledExample> test(examples.begin() + 300, examples.end());

  MscnConfig config = MscnConfig::SingleTable(table.NumColumns());
  config.train_epochs = 30;
  Mscn model(config, 13);
  nn::Matrix x;
  std::vector<double> y;
  ExamplesToMatrix(train, &x, &y);
  model.Train(x, y);
  double before = ModelGmq(model, test);
  model.Update(x, y);  // fine-tune on the same data
  double after = ModelGmq(model, test);
  EXPECT_LT(after, before * 1.2);
}

TEST(MscnDeathTest, WrongFeatureWidth) {
  Mscn model(MscnConfig::SingleTable(4), 1);
  nn::Matrix x(1, 3);
  std::vector<double> y = {1.0};
  EXPECT_DEATH(model.Train(x, y), "WARPER_CHECK");
}

}  // namespace
}  // namespace warper::ce
