#include "ce/model_io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace warper::ce {
namespace {

nn::Mlp MakeMlp(uint64_t seed, std::vector<size_t> sizes = {4, 8, 2}) {
  util::Rng rng(seed);
  nn::MlpConfig config;
  config.layer_sizes = std::move(sizes);
  return nn::Mlp(config, &rng);
}

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

TEST(ModelIoTest, SaveLoadRoundTrip) {
  nn::Mlp original = MakeMlp(1);
  std::string path = TempPath("roundtrip.mlp");
  ASSERT_TRUE(SaveMlp(original, path).ok());

  nn::Mlp restored = MakeMlp(2);  // different random init
  ASSERT_NE(restored.GetParameters(), original.GetParameters());
  ASSERT_TRUE(LoadMlp(&restored, path).ok());
  EXPECT_EQ(restored.GetParameters(), original.GetParameters());

  // Predictions agree bit-for-bit.
  nn::Matrix x = nn::Matrix::FromRows({{0.1, 0.2, 0.3, 0.4}});
  EXPECT_EQ(original.Predict(x).data(), restored.Predict(x).data());
  std::remove(path.c_str());
}

TEST(ModelIoTest, LoadRejectsShapeMismatch) {
  nn::Mlp original = MakeMlp(3);
  std::string path = TempPath("shape.mlp");
  ASSERT_TRUE(SaveMlp(original, path).ok());

  nn::Mlp wider = MakeMlp(3, {4, 16, 2});
  Status status = LoadMlp(&wider, path);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);

  nn::Mlp deeper = MakeMlp(3, {4, 8, 8, 2});
  EXPECT_FALSE(LoadMlp(&deeper, path).ok());
  std::remove(path.c_str());
}

TEST(ModelIoTest, LoadRejectsMissingFile) {
  nn::Mlp mlp = MakeMlp(5);
  Status status = LoadMlp(&mlp, TempPath("does-not-exist.mlp"));
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST(ModelIoTest, LoadRejectsGarbageFile) {
  std::string path = TempPath("garbage.mlp");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not an mlp";
  }
  nn::Mlp mlp = MakeMlp(7);
  Status status = LoadMlp(&mlp, path);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(MlpSnapshotTest, RestoreUndoesTraining) {
  nn::Mlp mlp = MakeMlp(9);
  MlpSnapshot snapshot(mlp);
  std::vector<double> before = mlp.GetParameters();

  // Perturb with an optimizer step.
  nn::Matrix x = nn::Matrix::FromRows({{1.0, 1.0, 1.0, 1.0}});
  mlp.ZeroGrad();
  nn::Matrix out = mlp.Forward(x);
  out.Scale(0.0);
  nn::Matrix grad(1, 2, 1.0);
  mlp.Backward(grad);
  nn::OptimizerConfig sgd;
  sgd.kind = nn::OptimizerKind::kSgd;
  mlp.Step(sgd, 0.1);
  ASSERT_NE(mlp.GetParameters(), before);

  ASSERT_TRUE(snapshot.RestoreTo(&mlp).ok());
  EXPECT_EQ(mlp.GetParameters(), before);
}

TEST(MlpSnapshotTest, ShapeMismatchIsAStatusNotACrash) {
  // A mismatched rollback during serving must surface as an error the
  // caller can handle, not abort the process.
  nn::Mlp a = MakeMlp(11);
  nn::Mlp b = MakeMlp(11, {4, 16, 2});
  MlpSnapshot snapshot(a);
  std::vector<double> untouched = b.GetParameters();
  Status status = snapshot.RestoreTo(&b);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(b.GetParameters(), untouched);
  EXPECT_EQ(snapshot.layer_sizes(), (std::vector<size_t>{4, 8, 2}));
}

TEST(WarperBundleTest, RoundTripsAllFourModels) {
  nn::Mlp m = MakeMlp(20, {6, 8, 1});
  nn::Mlp e = MakeMlp(21, {7, 4, 3});
  nn::Mlp g = MakeMlp(22, {3, 4, 7});
  nn::Mlp d = MakeMlp(23, {7, 4, 1});
  std::string path = TempPath("bundle.warper");
  ASSERT_TRUE(SaveWarperModels(&m, e, g, d, path).ok());

  nn::Mlp m2 = MakeMlp(30, {6, 8, 1});
  nn::Mlp e2 = MakeMlp(31, {7, 4, 3});
  nn::Mlp g2 = MakeMlp(32, {3, 4, 7});
  nn::Mlp d2 = MakeMlp(33, {7, 4, 1});
  ASSERT_NE(m2.GetParameters(), m.GetParameters());
  ASSERT_TRUE(LoadWarperModels(&m2, &e2, &g2, &d2, path).ok());
  EXPECT_EQ(m2.GetParameters(), m.GetParameters());
  EXPECT_EQ(e2.GetParameters(), e.GetParameters());
  EXPECT_EQ(g2.GetParameters(), g.GetParameters());
  EXPECT_EQ(d2.GetParameters(), d.GetParameters());
  std::remove(path.c_str());
}

TEST(WarperBundleTest, NullModelSkipsTheMSection) {
  // Models that re-train cheaply (GBT, kernel) are not serialized: the
  // bundle then carries only E/G/D.
  nn::Mlp e = MakeMlp(41, {7, 4, 3});
  nn::Mlp g = MakeMlp(42, {3, 4, 7});
  nn::Mlp d = MakeMlp(43, {7, 4, 1});
  std::string path = TempPath("bundle_no_m.warper");
  ASSERT_TRUE(SaveWarperModels(nullptr, e, g, d, path).ok());

  nn::Mlp e2 = MakeMlp(51, {7, 4, 3});
  nn::Mlp g2 = MakeMlp(52, {3, 4, 7});
  nn::Mlp d2 = MakeMlp(53, {7, 4, 1});
  ASSERT_TRUE(LoadWarperModels(nullptr, &e2, &g2, &d2, path).ok());
  EXPECT_EQ(e2.GetParameters(), e.GetParameters());

  // Asking for an M the file does not carry is an error, not a silent skip.
  nn::Mlp m = MakeMlp(54, {6, 8, 1});
  Status status = LoadWarperModels(&m, &e2, &g2, &d2, path);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(WarperBundleTest, LoadRejectsShapeMismatchAndGarbage) {
  nn::Mlp e = MakeMlp(61, {7, 4, 3});
  nn::Mlp g = MakeMlp(62, {3, 4, 7});
  nn::Mlp d = MakeMlp(63, {7, 4, 1});
  std::string path = TempPath("bundle_shape.warper");
  ASSERT_TRUE(SaveWarperModels(nullptr, e, g, d, path).ok());

  nn::Mlp wider = MakeMlp(64, {7, 16, 3});
  nn::Mlp g2 = MakeMlp(65, {3, 4, 7});
  nn::Mlp d2 = MakeMlp(66, {7, 4, 1});
  Status status = LoadWarperModels(nullptr, &wider, &g2, &d2, path);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());

  std::string garbage = TempPath("bundle_garbage.warper");
  {
    std::ofstream out(garbage, std::ios::binary);
    out << "not a bundle";
  }
  EXPECT_EQ(LoadWarperModels(nullptr, &g2, &g2, &d2, garbage).code(),
            StatusCode::kInvalidArgument);
  std::remove(garbage.c_str());
  EXPECT_EQ(
      LoadWarperModels(nullptr, &g2, &g2, &d2, TempPath("nope.warper")).code(),
      StatusCode::kNotFound);
}

}  // namespace
}  // namespace warper::ce
