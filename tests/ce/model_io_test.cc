#include "ce/model_io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace warper::ce {
namespace {

nn::Mlp MakeMlp(uint64_t seed, std::vector<size_t> sizes = {4, 8, 2}) {
  util::Rng rng(seed);
  nn::MlpConfig config;
  config.layer_sizes = std::move(sizes);
  return nn::Mlp(config, &rng);
}

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

TEST(ModelIoTest, SaveLoadRoundTrip) {
  nn::Mlp original = MakeMlp(1);
  std::string path = TempPath("roundtrip.mlp");
  ASSERT_TRUE(SaveMlp(original, path).ok());

  nn::Mlp restored = MakeMlp(2);  // different random init
  ASSERT_NE(restored.GetParameters(), original.GetParameters());
  ASSERT_TRUE(LoadMlp(&restored, path).ok());
  EXPECT_EQ(restored.GetParameters(), original.GetParameters());

  // Predictions agree bit-for-bit.
  nn::Matrix x = nn::Matrix::FromRows({{0.1, 0.2, 0.3, 0.4}});
  EXPECT_EQ(original.Predict(x).data(), restored.Predict(x).data());
  std::remove(path.c_str());
}

TEST(ModelIoTest, LoadRejectsShapeMismatch) {
  nn::Mlp original = MakeMlp(3);
  std::string path = TempPath("shape.mlp");
  ASSERT_TRUE(SaveMlp(original, path).ok());

  nn::Mlp wider = MakeMlp(3, {4, 16, 2});
  Status status = LoadMlp(&wider, path);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);

  nn::Mlp deeper = MakeMlp(3, {4, 8, 8, 2});
  EXPECT_FALSE(LoadMlp(&deeper, path).ok());
  std::remove(path.c_str());
}

TEST(ModelIoTest, LoadRejectsMissingFile) {
  nn::Mlp mlp = MakeMlp(5);
  Status status = LoadMlp(&mlp, TempPath("does-not-exist.mlp"));
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST(ModelIoTest, LoadRejectsGarbageFile) {
  std::string path = TempPath("garbage.mlp");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not an mlp";
  }
  nn::Mlp mlp = MakeMlp(7);
  Status status = LoadMlp(&mlp, path);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(MlpSnapshotTest, RestoreUndoesTraining) {
  nn::Mlp mlp = MakeMlp(9);
  MlpSnapshot snapshot(mlp);
  std::vector<double> before = mlp.GetParameters();

  // Perturb with an optimizer step.
  nn::Matrix x = nn::Matrix::FromRows({{1.0, 1.0, 1.0, 1.0}});
  mlp.ZeroGrad();
  nn::Matrix out = mlp.Forward(x);
  out.Scale(0.0);
  nn::Matrix grad(1, 2, 1.0);
  mlp.Backward(grad);
  nn::OptimizerConfig sgd;
  sgd.kind = nn::OptimizerKind::kSgd;
  mlp.Step(sgd, 0.1);
  ASSERT_NE(mlp.GetParameters(), before);

  snapshot.RestoreTo(&mlp);
  EXPECT_EQ(mlp.GetParameters(), before);
}

TEST(MlpSnapshotDeathTest, ShapeMismatch) {
  nn::Mlp a = MakeMlp(11);
  nn::Mlp b = MakeMlp(11, {4, 16, 2});
  MlpSnapshot snapshot(a);
  EXPECT_DEATH(snapshot.RestoreTo(&b), "shape mismatch");
}

}  // namespace
}  // namespace warper::ce
