#include "workload/spec.h"

#include <gtest/gtest.h>

namespace warper::workload {
namespace {

TEST(SpecTest, ParsesPaperNotation) {
  WorkloadSpec spec = WorkloadSpec::Parse("w12/345").ValueOrDie();
  EXPECT_EQ(spec.train,
            (std::vector<GenMethod>{GenMethod::kW1, GenMethod::kW2}));
  EXPECT_EQ(spec.drifted, (std::vector<GenMethod>{GenMethod::kW3,
                                                  GenMethod::kW4,
                                                  GenMethod::kW5}));
}

TEST(SpecTest, ParsesSinglePair) {
  WorkloadSpec spec = WorkloadSpec::Parse("w1/2").ValueOrDie();
  EXPECT_EQ(spec.train, (std::vector<GenMethod>{GenMethod::kW1}));
  EXPECT_EQ(spec.drifted, (std::vector<GenMethod>{GenMethod::kW2}));
}

TEST(SpecTest, ParsesExplicitW) {
  WorkloadSpec spec = WorkloadSpec::Parse("w4/w1").ValueOrDie();
  EXPECT_EQ(spec.train, (std::vector<GenMethod>{GenMethod::kW4}));
  EXPECT_EQ(spec.drifted, (std::vector<GenMethod>{GenMethod::kW1}));
}

TEST(SpecTest, ParsesAllMethodsShorthand) {
  WorkloadSpec spec = WorkloadSpec::Parse("w1-5").ValueOrDie();
  EXPECT_EQ(spec.train.size(), 5u);
  EXPECT_EQ(spec.train, spec.drifted);
}

TEST(SpecTest, NoSlashMeansNoDrift) {
  WorkloadSpec spec = WorkloadSpec::Parse("w125").ValueOrDie();
  EXPECT_EQ(spec.train.size(), 3u);
  EXPECT_EQ(spec.train, spec.drifted);
}

TEST(SpecTest, RoundTripToString) {
  for (const char* s : {"w12/345", "w1/2", "w125/34"}) {
    EXPECT_EQ(WorkloadSpec::Parse(s).ValueOrDie().ToString(), s);
  }
}

TEST(SpecTest, RejectsMalformedInput) {
  EXPECT_FALSE(WorkloadSpec::Parse("").ok());
  EXPECT_FALSE(WorkloadSpec::Parse("12/345").ok());
  EXPECT_FALSE(WorkloadSpec::Parse("w").ok());
  EXPECT_FALSE(WorkloadSpec::Parse("w6/1").ok());
  EXPECT_FALSE(WorkloadSpec::Parse("w0/1").ok());
  EXPECT_FALSE(WorkloadSpec::Parse("w1/").ok());
  EXPECT_FALSE(WorkloadSpec::Parse("w/2").ok());
  EXPECT_FALSE(WorkloadSpec::Parse("wx/2").ok());
}

}  // namespace
}  // namespace warper::workload
