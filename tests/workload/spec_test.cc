#include "workload/spec.h"

#include <gtest/gtest.h>

namespace warper::workload {
namespace {

TEST(SpecTest, ParsesPaperNotation) {
  WorkloadSpec spec = WorkloadSpec::Parse("w12/345").ValueOrDie();
  EXPECT_EQ(spec.train,
            (std::vector<GenMethod>{GenMethod::kW1, GenMethod::kW2}));
  EXPECT_EQ(spec.drifted, (std::vector<GenMethod>{GenMethod::kW3,
                                                  GenMethod::kW4,
                                                  GenMethod::kW5}));
}

TEST(SpecTest, ParsesSinglePair) {
  WorkloadSpec spec = WorkloadSpec::Parse("w1/2").ValueOrDie();
  EXPECT_EQ(spec.train, (std::vector<GenMethod>{GenMethod::kW1}));
  EXPECT_EQ(spec.drifted, (std::vector<GenMethod>{GenMethod::kW2}));
}

TEST(SpecTest, ParsesExplicitW) {
  WorkloadSpec spec = WorkloadSpec::Parse("w4/w1").ValueOrDie();
  EXPECT_EQ(spec.train, (std::vector<GenMethod>{GenMethod::kW4}));
  EXPECT_EQ(spec.drifted, (std::vector<GenMethod>{GenMethod::kW1}));
}

TEST(SpecTest, ParsesAllMethodsShorthand) {
  WorkloadSpec spec = WorkloadSpec::Parse("w1-5").ValueOrDie();
  EXPECT_EQ(spec.train.size(), 5u);
  EXPECT_EQ(spec.train, spec.drifted);
}

TEST(SpecTest, NoSlashMeansNoDrift) {
  WorkloadSpec spec = WorkloadSpec::Parse("w125").ValueOrDie();
  EXPECT_EQ(spec.train.size(), 3u);
  EXPECT_EQ(spec.train, spec.drifted);
}

TEST(SpecTest, RoundTripToString) {
  for (const char* s : {"w12/345", "w1/2", "w125/34"}) {
    EXPECT_EQ(WorkloadSpec::Parse(s).ValueOrDie().ToString(), s);
  }
}

TEST(SpecTest, RejectsMalformedInput) {
  EXPECT_FALSE(WorkloadSpec::Parse("").ok());
  EXPECT_FALSE(WorkloadSpec::Parse("12/345").ok());
  EXPECT_FALSE(WorkloadSpec::Parse("w").ok());
  EXPECT_FALSE(WorkloadSpec::Parse("w6/1").ok());
  EXPECT_FALSE(WorkloadSpec::Parse("w0/1").ok());
  EXPECT_FALSE(WorkloadSpec::Parse("w1/").ok());
  EXPECT_FALSE(WorkloadSpec::Parse("w/2").ok());
  EXPECT_FALSE(WorkloadSpec::Parse("wx/2").ok());
}

TEST(SpecTest, ParsesDriftWeightSuffix) {
  WorkloadSpec spec = WorkloadSpec::Parse("w12/345@0.7").ValueOrDie();
  EXPECT_EQ(spec.train,
            (std::vector<GenMethod>{GenMethod::kW1, GenMethod::kW2}));
  EXPECT_EQ(spec.drifted.size(), 3u);
  EXPECT_DOUBLE_EQ(spec.drift_weight, 0.7);
  // No suffix ⇒ the paper's complete flip.
  EXPECT_DOUBLE_EQ(WorkloadSpec::Parse("w12/345").ValueOrDie().drift_weight,
                   1.0);
}

TEST(SpecTest, DriftWeightRoundTripsThroughToString) {
  for (const char* s : {"w12/345@0.70", "w1/2@0.25", "w125/34@0.10"}) {
    WorkloadSpec spec = WorkloadSpec::Parse(s).ValueOrDie();
    EXPECT_EQ(spec.ToString(), s);
    WorkloadSpec again = WorkloadSpec::Parse(spec.ToString()).ValueOrDie();
    EXPECT_DOUBLE_EQ(again.drift_weight, spec.drift_weight);
    EXPECT_EQ(again.train, spec.train);
    EXPECT_EQ(again.drifted, spec.drifted);
  }
  // Weight 1 renders without the suffix (canonical paper notation).
  EXPECT_EQ(WorkloadSpec::Parse("w12/345@1.0").ValueOrDie().ToString(),
            "w12/345");
}

TEST(SpecTest, RejectsMalformedDriftWeight) {
  EXPECT_FALSE(WorkloadSpec::Parse("w12/345@").ok());
  EXPECT_FALSE(WorkloadSpec::Parse("w12/345@x").ok());
  EXPECT_FALSE(WorkloadSpec::Parse("w12/345@1.5").ok());
  EXPECT_FALSE(WorkloadSpec::Parse("w12/345@-0.2").ok());
  EXPECT_FALSE(WorkloadSpec::Parse("w12/345@0.5z").ok());
}

TEST(SpecTest, MixtureAtBlendsPerMethodShares) {
  WorkloadSpec spec = WorkloadSpec::Parse("w12/345").ValueOrDie();
  WeightedMix mix = spec.MixtureAt(0.6);
  // All five methods present: 0.4/2 each on w1,w2 and 0.6/3 each on w3-w5.
  ASSERT_EQ(mix.methods.size(), 5u);
  EXPECT_DOUBLE_EQ(mix.weights[0], 0.2);
  EXPECT_DOUBLE_EQ(mix.weights[1], 0.2);
  EXPECT_DOUBLE_EQ(mix.weights[2], 0.2);
  EXPECT_DOUBLE_EQ(mix.weights[3], 0.2);
  EXPECT_DOUBLE_EQ(mix.weights[4], 0.2);
  EXPECT_TRUE(mix.IsUniform());
  // Asymmetric sides are not uniform.
  WeightedMix skew = WorkloadSpec::Parse("w1/345").ValueOrDie().MixtureAt(0.3);
  EXPECT_FALSE(skew.IsUniform());
}

TEST(SpecTest, MixtureAtDegeneratesToSideVectors) {
  WorkloadSpec spec = WorkloadSpec::Parse("w12/345").ValueOrDie();
  WeightedMix at0 = spec.MixtureAt(0.0);
  EXPECT_EQ(at0.methods, spec.train);
  EXPECT_TRUE(at0.IsUniform());
  WeightedMix at1 = spec.MixtureAt(1.0);
  EXPECT_EQ(at1.methods, spec.drifted);
  EXPECT_TRUE(at1.IsUniform());
}

}  // namespace
}  // namespace warper::workload
