#include "workload/generator.h"

#include <cmath>

#include <gtest/gtest.h>

#include "storage/annotator.h"
#include "storage/datasets.h"

namespace warper::workload {
namespace {

using storage::RangePredicate;
using storage::Table;

// Property sweep over all five generator methods.
class GeneratorMethodSweep : public ::testing::TestWithParam<GenMethod> {};

TEST_P(GeneratorMethodSweep, PredicatesAreValid) {
  Table t = storage::MakePrsa(3000, 1);
  util::Rng rng(3);
  std::vector<RangePredicate> preds =
      GenerateWorkload(t, {GetParam()}, 100, &rng);
  ASSERT_EQ(preds.size(), 100u);
  for (const RangePredicate& p : preds) {
    ASSERT_EQ(p.NumColumns(), t.NumColumns());
    for (size_t c = 0; c < p.NumColumns(); ++c) {
      EXPECT_LE(p.low[c], p.high[c]);
      EXPECT_GE(p.low[c], t.column(c).Min());
      EXPECT_LE(p.high[c], t.column(c).Max());
    }
  }
}

TEST_P(GeneratorMethodSweep, ConstrainsBoundedColumnCount) {
  Table t = storage::MakeHiggs(2000, 2);
  util::Rng rng(5);
  GeneratorOptions opts;
  opts.min_constrained_cols = 1;
  opts.max_constrained_cols = 3;
  std::vector<RangePredicate> preds =
      GenerateWorkload(t, {GetParam()}, 50, &rng, opts);
  for (const RangePredicate& p : preds) {
    size_t constrained = 0;
    for (size_t c = 0; c < p.NumColumns(); ++c) {
      constrained += p.Constrains(t, c) ? 1 : 0;
    }
    // Can be fewer than min when a random bound lands on the domain edge,
    // but never more than the max.
    EXPECT_LE(constrained, 3u);
  }
}

TEST_P(GeneratorMethodSweep, DeterministicGivenSeed) {
  Table t = storage::MakePrsa(1000, 3);
  util::Rng a(7), b(7);
  std::vector<RangePredicate> pa = GenerateWorkload(t, {GetParam()}, 20, &a);
  std::vector<RangePredicate> pb = GenerateWorkload(t, {GetParam()}, 20, &b);
  EXPECT_EQ(pa, pb);
}

INSTANTIATE_TEST_SUITE_P(Methods, GeneratorMethodSweep,
                         ::testing::Values(GenMethod::kW1, GenMethod::kW2,
                                           GenMethod::kW3, GenMethod::kW4,
                                           GenMethod::kW5));

TEST(GeneratorTest, MethodNames) {
  EXPECT_STREQ(GenMethodName(GenMethod::kW1), "w1");
  EXPECT_STREQ(GenMethodName(GenMethod::kW5), "w5");
}

TEST(GeneratorTest, CategoricalBoundsAreIntegral) {
  Table t = storage::MakePoker(2000, 4);
  util::Rng rng(9);
  GeneratorOptions opts;
  opts.max_constrained_cols = 5;
  std::vector<RangePredicate> preds =
      GenerateWorkload(t, {GenMethod::kW1}, 50, &rng, opts);
  for (const RangePredicate& p : preds) {
    for (size_t c = 0; c < p.NumColumns(); ++c) {
      if (!p.Constrains(t, c)) continue;
      EXPECT_DOUBLE_EQ(p.low[c], std::round(p.low[c]));
      EXPECT_DOUBLE_EQ(p.high[c], std::round(p.high[c]));
    }
  }
}

TEST(GeneratorTest, W3PredicatesContainDataRows) {
  // Data-centred predicates should be non-empty much more often than
  // uniform-random ones on a heavy-tailed column.
  Table t = storage::MakePrsa(4000, 5);
  storage::Annotator annotator(&t);
  util::Rng rng(11);
  GeneratorOptions opts;
  opts.max_constrained_cols = 2;

  auto empty_fraction = [&](GenMethod m) {
    std::vector<RangePredicate> preds = GenerateWorkload(t, {m}, 60, &rng, opts);
    int empty = 0;
    for (int64_t c : annotator.BatchCount(preds)) empty += c == 0 ? 1 : 0;
    return static_cast<double>(empty) / 60.0;
  };
  EXPECT_LE(empty_fraction(GenMethod::kW3), empty_fraction(GenMethod::kW1) + 0.05);
}

TEST(GeneratorTest, W2ConcentratesNearDomainLow) {
  Table t = storage::MakeHiggs(2000, 6);
  util::Rng rng(13);
  GeneratorOptions opts;
  opts.min_constrained_cols = 1;
  opts.max_constrained_cols = 1;
  // Compare mean normalized low bound: w2 (log transform) should sit lower
  // than w1 (uniform).
  auto mean_low = [&](GenMethod m) {
    std::vector<RangePredicate> preds =
        GenerateWorkload(t, {m}, 200, &rng, opts);
    double sum = 0;
    int n = 0;
    for (const RangePredicate& p : preds) {
      for (size_t c = 0; c < p.NumColumns(); ++c) {
        if (!p.Constrains(t, c)) continue;
        double span = t.column(c).Max() - t.column(c).Min();
        sum += (p.low[c] - t.column(c).Min()) / span;
        ++n;
      }
    }
    return sum / n;
  };
  EXPECT_LT(mean_low(GenMethod::kW2), mean_low(GenMethod::kW1));
}

TEST(GeneratorTest, MixtureUsesAllMethods) {
  Table t = storage::MakePrsa(1000, 7);
  util::Rng rng(15);
  // With a mixture, generated predicates should not all be identical in
  // character; sanity check that generation succeeds at volume.
  std::vector<RangePredicate> preds = GenerateWorkload(
      t, {GenMethod::kW1, GenMethod::kW2, GenMethod::kW3}, 300, &rng);
  EXPECT_EQ(preds.size(), 300u);
}

TEST(GeneratorTest, UniformWeightedMixReplaysUniformStream) {
  // A uniform WeightedMix must delegate to the plain overload, consuming the
  // exact same RNG stream — the bit-compat anchor the c1/c2/c3 drift presets
  // rely on.
  Table t = storage::MakePrsa(1000, 9);
  util::Rng a(21), b(21);
  std::vector<GenMethod> methods = {GenMethod::kW1, GenMethod::kW3,
                                    GenMethod::kW5};
  WeightedMix mix;
  mix.methods = methods;
  mix.weights = {0.25, 0.25, 0.25};
  EXPECT_TRUE(mix.IsUniform());
  std::vector<RangePredicate> uniform = GenerateWorkload(t, methods, 40, &a);
  std::vector<RangePredicate> weighted = GenerateWorkload(t, mix, 40, &b);
  EXPECT_EQ(uniform, weighted);
  // And the RNG cursors advanced identically.
  EXPECT_EQ(a.UniformInt(0, 1 << 30), b.UniformInt(0, 1 << 30));
}

TEST(GeneratorTest, WeightedMixSkewsTowardHeavyMethods) {
  // w2 predicates concentrate near the domain low end; a 9:1 mixture of w2
  // vs w1 must land much lower on average than 1:9.
  Table t = storage::MakePrsa(2000, 11);
  auto mean_low = [&](double w2_weight) {
    util::Rng rng(33);
    WeightedMix mix;
    mix.methods = {GenMethod::kW1, GenMethod::kW2};
    mix.weights = {1.0 - w2_weight, w2_weight};
    std::vector<RangePredicate> preds = GenerateWorkload(t, mix, 400, &rng);
    double sum = 0.0;
    size_t n = 0;
    for (const RangePredicate& p : preds) {
      for (size_t c = 0; c < p.NumColumns(); ++c) {
        if (!p.Constrains(t, c)) continue;
        double span = t.column(c).Max() - t.column(c).Min();
        if (span <= 0.0) continue;
        sum += (p.low[c] - t.column(c).Min()) / span;
        ++n;
      }
    }
    return n == 0 ? 0.0 : sum / n;
  };
  EXPECT_LT(mean_low(0.9), mean_low(0.1));
}

TEST(GeneratorTest, WeightedMixDropsZeroWeightMethods) {
  Table t = storage::MakePrsa(800, 13);
  util::Rng a(41), b(41);
  WeightedMix mix;
  mix.methods = {GenMethod::kW1, GenMethod::kW4};
  mix.weights = {1.0, 0.0};
  // Zero-weight w4 is filtered out entirely: same stream as pure w1.
  std::vector<RangePredicate> filtered = GenerateWorkload(t, mix, 25, &a);
  std::vector<RangePredicate> pure =
      GenerateWorkload(t, {GenMethod::kW1}, 25, &b);
  EXPECT_EQ(filtered, pure);
}

}  // namespace
}  // namespace warper::workload
