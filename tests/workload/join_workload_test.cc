#include "workload/join_workload.h"

#include <set>

#include <gtest/gtest.h>

#include "storage/datasets.h"

namespace warper::workload {
namespace {

TEST(JoinWorkloadTest, QueriesAreWellFormed) {
  storage::ImdbTables tables = storage::MakeImdb(300, 1);
  storage::StarSchema schema = tables.Schema();
  util::Rng rng(3);
  std::vector<storage::JoinQuery> queries =
      GenerateJoinWorkload(schema, GenMethod::kW1, 50, &rng);
  ASSERT_EQ(queries.size(), 50u);
  for (const storage::JoinQuery& q : queries) {
    EXPECT_GT(q.join_mask, 0u);
    EXPECT_LT(q.join_mask, 1u << schema.facts.size());
    EXPECT_EQ(q.fact_preds.size(), schema.facts.size());
    EXPECT_EQ(q.center_pred.NumColumns(), schema.center->NumColumns());
    for (size_t f = 0; f < schema.facts.size(); ++f) {
      EXPECT_EQ(q.fact_preds[f].NumColumns(),
                schema.facts[f].table->NumColumns());
    }
  }
}

TEST(JoinWorkloadTest, SamplesDifferentJoinMasks) {
  storage::ImdbTables tables = storage::MakeImdb(200, 2);
  storage::StarSchema schema = tables.Schema();
  util::Rng rng(5);
  std::vector<storage::JoinQuery> queries =
      GenerateJoinWorkload(schema, GenMethod::kW3, 60, &rng);
  std::set<uint32_t> masks;
  for (const auto& q : queries) masks.insert(q.join_mask);
  // With 2 fact tables there are 3 possible non-empty masks.
  EXPECT_EQ(masks.size(), 3u);
}

TEST(JoinWorkloadTest, Deterministic) {
  storage::ImdbTables tables = storage::MakeImdb(150, 3);
  storage::StarSchema schema = tables.Schema();
  util::Rng a(7), b(7);
  auto qa = GenerateJoinWorkload(schema, GenMethod::kW4, 10, &a);
  auto qb = GenerateJoinWorkload(schema, GenMethod::kW4, 10, &b);
  for (size_t i = 0; i < qa.size(); ++i) {
    EXPECT_EQ(qa[i].join_mask, qb[i].join_mask);
    EXPECT_EQ(qa[i].center_pred, qb[i].center_pred);
  }
}

}  // namespace
}  // namespace warper::workload
