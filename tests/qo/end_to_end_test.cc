// Integration: CE drift → plan quality → simulated latency, end to end
// (the §4.2 mechanism at test scale). Verifies that adapting the estimator
// with Warper reduces the latency penalty of misestimate-driven plans.
#include <gtest/gtest.h>

#include "ce/lm.h"
#include "ce/metrics.h"
#include "ce/query_domain.h"
#include "core/warper.h"
#include "qo/executor.h"
#include "storage/annotator.h"
#include "storage/datasets.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace warper::qo {
namespace {

TEST(EndToEndTest, AdaptationReducesLatencyPenalty) {
  storage::TpchTables tables = storage::MakeTpch(3000, 71);
  storage::Annotator annotator(&tables.lineitem);
  ce::SingleTableDomain domain(&annotator);
  util::Rng rng(71);

  // Single-column training templates → multi-column drifted templates.
  workload::GeneratorOptions train_opts;
  train_opts.min_constrained_cols = train_opts.max_constrained_cols = 1;
  workload::GeneratorOptions drifted_opts;
  drifted_opts.min_constrained_cols = 2;
  drifted_opts.max_constrained_cols = 3;

  auto make_examples = [&](workload::GenMethod method, size_t n,
                           const workload::GeneratorOptions& opts) {
    std::vector<storage::RangePredicate> preds =
        workload::GenerateWorkload(tables.lineitem, {method}, n, &rng, opts);
    std::vector<int64_t> counts = annotator.BatchCount(preds);
    std::vector<ce::LabeledExample> out(n);
    for (size_t i = 0; i < n; ++i) {
      out[i] = {domain.FeaturizePredicate(preds[i]), counts[i]};
    }
    return out;
  };

  std::vector<ce::LabeledExample> train =
      make_examples(workload::GenMethod::kW1, 400, train_opts);
  ce::LmMlp model(domain.FeatureDim(), ce::LmMlpConfig{}, 71);
  {
    nn::Matrix x;
    std::vector<double> y;
    ce::ExamplesToMatrix(train, &x, &y);
    model.Train(x, y);
  }

  std::vector<storage::RangePredicate> test_preds =
      workload::GenerateWorkload(tables.lineitem, {workload::GenMethod::kW3},
                                 40, &rng, drifted_opts);
  std::vector<std::vector<double>> test_features;
  std::vector<ActualCardinalities> actuals;
  for (const auto& p : test_preds) {
    test_features.push_back(domain.FeaturizePredicate(p));
    SpjQuery query;
    query.lineitem_pred = p;
    query.orders_pred = storage::RangePredicate::FullRange(tables.orders);
    actuals.push_back(ComputeActuals(tables, query));
  }

  Optimizer optimizer;
  Executor executor(&tables);
  auto latency_penalty = [&]() {
    double model_total = 0.0, perfect_total = 0.0;
    for (size_t i = 0; i < test_preds.size(); ++i) {
      double est_l = model.EstimateCardinality(test_features[i]);
      PhysicalPlan plan = optimizer.Plan(
          est_l, static_cast<double>(tables.orders.NumRows()),
          Scenario::kBufferSpill);
      model_total += executor.Execute(actuals[i], plan).latency_ms;
      perfect_total += executor
                           .RunWithTrueCardinalities(actuals[i], optimizer,
                                                     Scenario::kBufferSpill)
                           .latency_ms;
    }
    return model_total / perfect_total;  // ≥ 1; 1 = perfect plans
  };

  std::vector<ce::LabeledExample> test_examples;
  for (size_t i = 0; i < test_preds.size(); ++i) {
    test_examples.push_back(
        {test_features[i], actuals[i].lineitem_rows});
  }
  double penalty_before = latency_penalty();
  double gmq_before = ce::ModelGmq(model, test_examples);

  core::WarperConfig config;
  config.hidden_units = 64;
  config.hidden_layers = 2;
  config.n_i = 50;
  config.n_p = 300;
  core::Warper warper(&domain, &model, config);
  ASSERT_TRUE(warper.Initialize(train).ok());
  for (int step = 0; step < 3; ++step) {
    core::Warper::Invocation invocation;
    invocation.new_queries =
        make_examples(workload::GenMethod::kW3, 48, drifted_opts);
    ASSERT_TRUE(warper.Invoke(invocation).ok());
  }

  double penalty_after = latency_penalty();
  double gmq_after = ce::ModelGmq(model, test_examples);

  EXPECT_GE(penalty_before, 1.0);
  EXPECT_GE(penalty_after, 1.0);
  // Estimates must improve. Latency is only *statistically* monotone in CE
  // accuracy (plan choices are discrete), so the penalty is checked for
  // boundedness rather than strict improvement at this single-seed scale —
  // the fig09 bench measures the aggregate effect.
  EXPECT_LT(gmq_after, gmq_before);
  EXPECT_LT(penalty_after, penalty_before * 1.5);
}

}  // namespace
}  // namespace warper::qo
