#include "qo/spj_query.h"

#include <gtest/gtest.h>

#include "storage/annotator.h"

namespace warper::qo {
namespace {

TEST(ScenarioTest, Names) {
  EXPECT_STREQ(ScenarioName(Scenario::kBufferSpill), "S1-BufferSpill");
  EXPECT_STREQ(ScenarioName(Scenario::kJoinType), "S2-JoinType");
  EXPECT_STREQ(ScenarioName(Scenario::kBitmapSide), "S3-BitmapSide");
}

TEST(ComputeActualsTest, FullRangeMatchesTableSizes) {
  storage::TpchTables tables = storage::MakeTpch(300, 1);
  SpjQuery query;
  query.lineitem_pred = storage::RangePredicate::FullRange(tables.lineitem);
  query.orders_pred = storage::RangePredicate::FullRange(tables.orders);
  ActualCardinalities actual = ComputeActuals(tables, query);
  EXPECT_EQ(actual.orders_rows, 300);
  EXPECT_EQ(actual.lineitem_rows,
            static_cast<int64_t>(tables.lineitem.NumRows()));
  // Every lineitem joins to exactly one order (FK integrity).
  EXPECT_EQ(actual.join_rows, actual.lineitem_rows);
  EXPECT_EQ(actual.lineitem_semijoin_rows, actual.lineitem_rows);
  EXPECT_EQ(actual.orders_semijoin_rows, actual.orders_rows);
}

TEST(ComputeActualsTest, OrdersFilterCutsJoin) {
  storage::TpchTables tables = storage::MakeTpch(400, 2);
  SpjQuery query;
  query.lineitem_pred = storage::RangePredicate::FullRange(tables.lineitem);
  query.orders_pred = storage::RangePredicate::FullRange(tables.orders);
  // Keep only early orders.
  size_t odate = tables.orders.ColumnIndex("o_orderdate").ValueOrDie();
  query.orders_pred.high[odate] = 1000.0;

  ActualCardinalities actual = ComputeActuals(tables, query);
  EXPECT_LT(actual.orders_rows, 400);
  EXPECT_GT(actual.orders_rows, 0);
  EXPECT_LT(actual.join_rows, static_cast<int64_t>(tables.lineitem.NumRows()));
  // Semijoin rows never exceed filtered rows.
  EXPECT_LE(actual.lineitem_semijoin_rows, actual.lineitem_rows);
  EXPECT_LE(actual.orders_semijoin_rows, actual.orders_rows);
}

TEST(ComputeActualsTest, JoinCountMatchesAnnotatorSides) {
  storage::TpchTables tables = storage::MakeTpch(200, 3);
  storage::Annotator l_annotator(&tables.lineitem);
  storage::Annotator o_annotator(&tables.orders);

  SpjQuery query;
  query.lineitem_pred = storage::RangePredicate::FullRange(tables.lineitem);
  query.orders_pred = storage::RangePredicate::FullRange(tables.orders);
  size_t qty = tables.lineitem.ColumnIndex("l_quantity").ValueOrDie();
  query.lineitem_pred.high[qty] = 25.0;

  ActualCardinalities actual = ComputeActuals(tables, query);
  EXPECT_EQ(actual.lineitem_rows, l_annotator.Count(query.lineitem_pred));
  EXPECT_EQ(actual.orders_rows, o_annotator.Count(query.orders_pred));
  // With full orders, every filtered lineitem row survives the semijoin.
  EXPECT_EQ(actual.join_rows, actual.lineitem_rows);
}

TEST(ComputeActualsTest, EmptyPredicateGivesZeroJoin) {
  storage::TpchTables tables = storage::MakeTpch(100, 4);
  SpjQuery query;
  query.lineitem_pred = storage::RangePredicate::FullRange(tables.lineitem);
  query.orders_pred = storage::RangePredicate::FullRange(tables.orders);
  size_t qty = tables.lineitem.ColumnIndex("l_quantity").ValueOrDie();
  query.lineitem_pred.low[qty] = 20.2;
  query.lineitem_pred.high[qty] = 20.8;  // between integer quantities
  ActualCardinalities actual = ComputeActuals(tables, query);
  EXPECT_EQ(actual.lineitem_rows, 0);
  EXPECT_EQ(actual.join_rows, 0);
  EXPECT_EQ(actual.orders_semijoin_rows, 0);
}

}  // namespace
}  // namespace warper::qo
