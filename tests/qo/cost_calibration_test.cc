// Calibration properties of the execution cost model against the paper's
// Table-9 scenario ordering: S2 (nested loop) ≫ S3 (bitmap side) > S1
// (spill) in worst-case latency gap, measured on realistic volumes.
#include <gtest/gtest.h>

#include "qo/executor.h"
#include "storage/datasets.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace warper::qo {
namespace {

struct CalibrationEnv {
  storage::TpchTables tables = storage::MakeTpch(8000, 3);
  Executor executor{&tables};
  Optimizer optimizer;
  util::Rng rng{3};

  // Worst-case gap over a workload of real queries for one scenario, using
  // the fig09 adversarial probes.
  double MaxGap(Scenario scenario) {
    std::vector<storage::RangePredicate> l_preds = workload::GenerateWorkload(
        tables.lineitem, {workload::GenMethod::kW1}, 25, &rng);
    std::vector<storage::RangePredicate> o_preds = workload::GenerateWorkload(
        tables.orders, {workload::GenMethod::kW1}, 25, &rng);
    double max_gap = 1.0;
    for (size_t i = 0; i < l_preds.size(); ++i) {
      SpjQuery query;
      query.lineitem_pred = l_preds[i];
      query.orders_pred = scenario == Scenario::kBufferSpill
                              ? storage::RangePredicate::FullRange(tables.orders)
                              : o_preds[i];
      ActualCardinalities actual = ComputeActuals(tables, query);
      double good =
          executor.RunWithTrueCardinalities(actual, optimizer, scenario)
              .latency_ms;
      double act_l = static_cast<double>(actual.lineitem_rows);
      double act_o = static_cast<double>(actual.orders_rows);
      PhysicalPlan bad;
      if (scenario == Scenario::kBitmapSide) {
        bad = optimizer.Plan(act_l, act_o, scenario);
        bad.bitmap_on_lineitem = !bad.bitmap_on_lineitem;
      } else {
        bad = optimizer.Plan(std::max(1.0, act_l / 100.0),
                             std::max(1.0, act_o / 100.0), scenario);
      }
      max_gap = std::max(max_gap,
                         executor.Execute(actual, bad).latency_ms / good);
    }
    return max_gap;
  }
};

TEST(CostCalibrationTest, ScenarioGapOrderingMatchesTable9) {
  CalibrationEnv env;
  double s1 = env.MaxGap(Scenario::kBufferSpill);
  double s2 = env.MaxGap(Scenario::kJoinType);
  double s3 = env.MaxGap(Scenario::kBitmapSide);
  // Paper: 2.1x / 306x / 5.3x — nested loop is catastrophic, the other two
  // are single-digit-to-tens multipliers.
  EXPECT_GT(s2, s3);
  EXPECT_GT(s3, s1);
  EXPECT_GT(s1, 1.2);
  EXPECT_LT(s1, 10.0);
  EXPECT_GT(s2, 30.0);
}

TEST(CostCalibrationTest, GapsGrowWithScale) {
  // Larger tables widen the nested-loop gap (quadratic work vs linear).
  storage::TpchTables small_tables = storage::MakeTpch(2000, 5);
  storage::TpchTables large_tables = storage::MakeTpch(10000, 5);

  auto nlj_gap = [](const storage::TpchTables& tables) {
    Executor executor(&tables);
    Optimizer optimizer;
    SpjQuery query;
    query.lineitem_pred = storage::RangePredicate::FullRange(tables.lineitem);
    query.orders_pred = storage::RangePredicate::FullRange(tables.orders);
    ActualCardinalities actual = ComputeActuals(tables, query);
    PhysicalPlan bad = optimizer.Plan(10, 10, Scenario::kJoinType);
    double good = executor
                      .RunWithTrueCardinalities(actual, optimizer,
                                                Scenario::kJoinType)
                      .latency_ms;
    return executor.Execute(actual, bad).latency_ms / good;
  };
  EXPECT_GT(nlj_gap(large_tables), nlj_gap(small_tables));
}

}  // namespace
}  // namespace warper::qo
