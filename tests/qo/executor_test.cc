#include "qo/executor.h"

#include <gtest/gtest.h>

namespace warper::qo {
namespace {

struct ExecutorEnv {
  storage::TpchTables tables = storage::MakeTpch(2000, 1);
  Executor executor{&tables};
  Optimizer optimizer;
};

ActualCardinalities MidsizeActuals() {
  ActualCardinalities actual;
  actual.lineitem_rows = 20000;
  actual.orders_rows = 1500;
  actual.join_rows = 20000;
  actual.lineitem_semijoin_rows = 16000;
  actual.orders_semijoin_rows = 1400;
  return actual;
}

TEST(ExecutorTest, SpillCostsMoreThanNoSpill) {
  ExecutorEnv env;
  ActualCardinalities actual = MidsizeActuals();

  // Correct estimates (L = 20000, O = 1500): build on orders, grant covers.
  PhysicalPlan good = env.optimizer.Plan(20000, 1500, Scenario::kBufferSpill);
  ExecutionResult good_result = env.executor.Execute(actual, good);
  EXPECT_FALSE(good_result.spilled);

  // Underestimate of the build side → grant too small → spill.
  PhysicalPlan bad = good;
  bad.memory_grant_rows = 100;
  ExecutionResult bad_result = env.executor.Execute(actual, bad);
  EXPECT_TRUE(bad_result.spilled);
  EXPECT_GT(bad_result.latency_ms, good_result.latency_ms * 1.5);
}

TEST(ExecutorTest, SpillGapInPaperBallpark) {
  // The paper reports a max 2.1× latency gap for S1 (Table 9); the model
  // should land in the single-digit multiplier regime, not 100×.
  ExecutorEnv env;
  ActualCardinalities actual = MidsizeActuals();
  PhysicalPlan good = env.optimizer.Plan(
      static_cast<double>(actual.lineitem_rows),
      static_cast<double>(actual.orders_rows), Scenario::kBufferSpill);
  PhysicalPlan bad = good;
  bad.memory_grant_rows = 64;
  double ratio = env.executor.Execute(actual, bad).latency_ms /
                 env.executor.Execute(actual, good).latency_ms;
  EXPECT_GT(ratio, 1.2);
  EXPECT_LT(ratio, 10.0);
}

TEST(ExecutorTest, WrongNestedLoopIsCatastrophic) {
  ExecutorEnv env;
  ActualCardinalities actual = MidsizeActuals();

  PhysicalPlan hash = env.optimizer.Plan(
      static_cast<double>(actual.lineitem_rows),
      static_cast<double>(actual.orders_rows), Scenario::kJoinType);
  ASSERT_EQ(hash.join, JoinAlgorithm::kHashJoin);

  // Underestimates trick the QO into a nested loop.
  PhysicalPlan nlj = env.optimizer.Plan(50, 50, Scenario::kJoinType);
  nlj.memory_grant_rows = hash.memory_grant_rows;  // isolate the join choice
  ASSERT_EQ(nlj.join, JoinAlgorithm::kNestedLoop);

  double ratio = env.executor.Execute(actual, nlj).latency_ms /
                 env.executor.Execute(actual, hash).latency_ms;
  // Paper: up to 306× for S2 on SF-10 cardinalities; at this test's smaller
  // actuals the gap is bounded below by an order of magnitude.
  EXPECT_GT(ratio, 10.0);
}

TEST(ExecutorTest, RightNestedLoopIsFineForTinyInputs) {
  ExecutorEnv env;
  ActualCardinalities tiny;
  tiny.lineitem_rows = 50;
  tiny.orders_rows = 30;
  tiny.join_rows = 50;
  tiny.lineitem_semijoin_rows = 50;
  tiny.orders_semijoin_rows = 30;

  PhysicalPlan nlj = env.optimizer.Plan(50, 30, Scenario::kJoinType);
  ASSERT_EQ(nlj.join, JoinAlgorithm::kNestedLoop);
  PhysicalPlan hash = nlj;
  hash.join = JoinAlgorithm::kHashJoin;
  // For tiny inputs the two differ by scan-dominated noise, not 100×.
  double ratio = env.executor.Execute(tiny, nlj).latency_ms /
                 env.executor.Execute(tiny, hash).latency_ms;
  EXPECT_LT(ratio, 1.5);
}

TEST(ExecutorTest, WrongBitmapSideDegradesParallelPlan) {
  ExecutorEnv env;
  ActualCardinalities actual;
  actual.lineitem_rows = 40000;
  actual.orders_rows = 800;
  actual.join_rows = 3000;
  actual.lineitem_semijoin_rows = 3000;  // bitmap on orders filters L hard
  actual.orders_semijoin_rows = 750;

  PhysicalPlan right = env.optimizer.Plan(40000, 800, Scenario::kBitmapSide);
  ASSERT_FALSE(right.bitmap_on_lineitem);
  PhysicalPlan wrong = right;
  wrong.bitmap_on_lineitem = true;
  wrong.build_on_lineitem = true;

  double ratio = env.executor.Execute(actual, wrong).latency_ms /
                 env.executor.Execute(actual, right).latency_ms;
  // Paper: 5.3× max gap for S3 at SF-10, where table scans put a floor under
  // the correct plan. This unit test uses tiny tables (no scan floor), so
  // only the ordering and a loose ceiling are asserted; the fig09 bench
  // checks the calibrated gap on realistic volumes.
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 200.0);
}

TEST(ExecutorTest, ParallelismSpeedsUpScan) {
  ExecutorEnv env;
  ActualCardinalities actual = MidsizeActuals();
  PhysicalPlan serial = env.optimizer.Plan(20000, 1500, Scenario::kBufferSpill);
  PhysicalPlan parallel = env.optimizer.Plan(20000, 1500, Scenario::kBitmapSide);
  EXPECT_LT(env.executor.Execute(actual, parallel).latency_ms,
            env.executor.Execute(actual, serial).latency_ms);
}

TEST(ExecutorTest, RunWithTrueCardinalitiesNeverSpills) {
  ExecutorEnv env;
  ActualCardinalities actual = MidsizeActuals();
  ExecutionResult result = env.executor.RunWithTrueCardinalities(
      actual, env.optimizer, Scenario::kBufferSpill);
  EXPECT_FALSE(result.spilled);
}

TEST(ExecutorTest, RunEndToEnd) {
  ExecutorEnv env;
  SpjQuery query;
  query.lineitem_pred =
      storage::RangePredicate::FullRange(env.tables.lineitem);
  query.orders_pred = storage::RangePredicate::FullRange(env.tables.orders);
  ExecutionResult result = env.executor.Run(query, env.optimizer, 1e6, 1e6,
                                            Scenario::kBufferSpill);
  EXPECT_GT(result.latency_ms, 0.0);
  EXPECT_FALSE(result.spilled);  // over-estimates give a generous grant
}

TEST(ExecutorTest, LatencyMonotonicInJoinSize) {
  ExecutorEnv env;
  ActualCardinalities small = MidsizeActuals();
  ActualCardinalities big = small;
  big.join_rows *= 10;
  PhysicalPlan plan = env.optimizer.Plan(20000, 1500, Scenario::kBufferSpill);
  EXPECT_LT(env.executor.Execute(small, plan).latency_ms,
            env.executor.Execute(big, plan).latency_ms);
}

}  // namespace
}  // namespace warper::qo
