#include "qo/optimizer.h"

#include <gtest/gtest.h>

namespace warper::qo {
namespace {

TEST(OptimizerTest, HashJoinByDefault) {
  Optimizer optimizer;
  PhysicalPlan plan = optimizer.Plan(50000, 10000, Scenario::kBufferSpill);
  EXPECT_EQ(plan.join, JoinAlgorithm::kHashJoin);
  EXPECT_FALSE(plan.parallel);
}

TEST(OptimizerTest, NestedLoopOnlyWhenBothSmallInJoinTypeScenario) {
  Optimizer optimizer;
  // Both small → NLJ.
  PhysicalPlan plan = optimizer.Plan(100, 200, Scenario::kJoinType);
  EXPECT_EQ(plan.join, JoinAlgorithm::kNestedLoop);
  // One side large → hash join.
  plan = optimizer.Plan(100, 100000, Scenario::kJoinType);
  EXPECT_EQ(plan.join, JoinAlgorithm::kHashJoin);
  // NLJ never picked outside the S2 scenario.
  plan = optimizer.Plan(100, 200, Scenario::kBufferSpill);
  EXPECT_EQ(plan.join, JoinAlgorithm::kHashJoin);
}

TEST(OptimizerTest, BuildSideIsSmallerEstimate) {
  Optimizer optimizer;
  PhysicalPlan plan = optimizer.Plan(1000, 50000, Scenario::kBufferSpill);
  EXPECT_TRUE(plan.build_on_lineitem);
  plan = optimizer.Plan(50000, 1000, Scenario::kBufferSpill);
  EXPECT_FALSE(plan.build_on_lineitem);
}

TEST(OptimizerTest, GrantTracksBuildEstimateWithSlack) {
  OptimizerConfig config;
  config.grant_slack = 1.2;
  Optimizer optimizer(config);
  PhysicalPlan plan = optimizer.Plan(1000, 50000, Scenario::kBufferSpill);
  EXPECT_EQ(plan.memory_grant_rows, 1200);
}

TEST(OptimizerTest, MinimumGrantEnforced) {
  OptimizerConfig config;
  config.min_grant_rows = 64;
  Optimizer optimizer(config);
  PhysicalPlan plan = optimizer.Plan(1, 50000, Scenario::kBufferSpill);
  EXPECT_EQ(plan.memory_grant_rows, 64);
}

TEST(OptimizerTest, BitmapSideOnlyInParallelScenario) {
  Optimizer optimizer;
  PhysicalPlan plan = optimizer.Plan(500, 9000, Scenario::kBitmapSide);
  EXPECT_TRUE(plan.parallel);
  EXPECT_TRUE(plan.bitmap_on_lineitem);
  plan = optimizer.Plan(9000, 500, Scenario::kBitmapSide);
  EXPECT_FALSE(plan.bitmap_on_lineitem);
}

TEST(OptimizerTest, NegativeEstimatesClampedToZero) {
  Optimizer optimizer;
  PhysicalPlan plan = optimizer.Plan(-10, 100, Scenario::kJoinType);
  EXPECT_EQ(plan.join, JoinAlgorithm::kNestedLoop);
  EXPECT_TRUE(plan.build_on_lineitem);
}

TEST(PlanTest, ToStringDescribes) {
  Optimizer optimizer;
  PhysicalPlan plan = optimizer.Plan(100, 200, Scenario::kBitmapSide);
  std::string s = plan.ToString();
  EXPECT_NE(s.find("HashJoin"), std::string::npos);
  EXPECT_NE(s.find("bitmap=L"), std::string::npos);
}

}  // namespace
}  // namespace warper::qo
