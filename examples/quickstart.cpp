// Quickstart: adapt a learned cardinality estimator to a workload drift.
//
// Builds a PRSA-like table, trains an LM-mlp estimator on workload w1,
// drifts the workload to w3, and lets Warper adapt the model against a
// fine-tuning baseline. Prints GMQ after each adaptation step.
#include <iostream>

#include "ce/lm.h"
#include "ce/metrics.h"
#include "ce/query_domain.h"
#include "core/warper.h"
#include "storage/annotator.h"
#include "storage/datasets.h"
#include "util/rng.h"
#include "workload/generator.h"

using namespace warper;  // NOLINT — example brevity

namespace {

// Annotated LabeledExamples for `n` predicates from the given method.
std::vector<ce::LabeledExample> MakeExamples(
    const storage::Table& table, const storage::Annotator& annotator,
    const ce::SingleTableDomain& domain, workload::GenMethod method, size_t n,
    util::Rng* rng) {
  std::vector<storage::RangePredicate> preds =
      workload::GenerateWorkload(table, {method}, n, rng);
  std::vector<int64_t> counts = annotator.BatchCount(preds);
  std::vector<ce::LabeledExample> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = {domain.FeaturizePredicate(preds[i]), counts[i]};
  }
  return out;
}

}  // namespace

int main() {
  util::Rng rng(7);

  // 1. A dataset and its annotator (the ground-truth oracle A).
  storage::Table table = storage::MakePrsa(/*rows=*/40000, /*seed=*/7);
  storage::Annotator annotator(&table);
  ce::SingleTableDomain domain(&annotator);

  // 2. Train the CE model M on the historical workload (w1).
  std::vector<ce::LabeledExample> train = MakeExamples(
      table, annotator, domain, workload::GenMethod::kW1, 800, &rng);
  ce::LmMlp model(domain.FeatureDim(), ce::LmMlpConfig{}, /*seed=*/7);
  {
    nn::Matrix x;
    std::vector<double> y;
    ce::ExamplesToMatrix(train, &x, &y);
    model.Train(x, y);
  }

  // 3. The workload drifts to w3; a held-out test set measures accuracy.
  std::vector<ce::LabeledExample> test = MakeExamples(
      table, annotator, domain, workload::GenMethod::kW3, 150, &rng);
  std::cout << "GMQ on training workload (w1): "
            << ce::ModelGmq(model, train) << "\n";
  std::cout << "GMQ after drift to w3, unadapted: "
            << ce::ModelGmq(model, test) << "\n\n";

  // 4. Warper adapts M as new w3 queries trickle in.
  core::WarperConfig config;
  config.n_p = 200;
  if (Status st = config.Validate(); !st.ok()) {
    std::cerr << "bad config: " << st.ToString() << "\n";
    return 1;
  }
  core::Warper warper(&domain, &model, config);
  if (Status st = warper.Initialize(train); !st.ok()) {
    std::cerr << "Initialize failed: " << st.ToString() << "\n";
    return 1;
  }

  for (int step = 1; step <= 4; ++step) {
    core::Warper::Invocation invocation;
    invocation.new_queries = MakeExamples(table, annotator, domain,
                                          workload::GenMethod::kW3, 48, &rng);
    Result<core::Warper::InvocationResult> invoked = warper.Invoke(invocation);
    if (!invoked.ok()) {
      std::cerr << "Invoke failed: " << invoked.status().ToString() << "\n";
      return 1;
    }
    const core::Warper::InvocationResult& result = invoked.ValueOrDie();
    std::cout << "step " << step << ": mode=" << result.mode.ToString()
              << " generated=" << result.generated
              << " annotated=" << result.annotated
              << " GMQ=" << ce::ModelGmq(model, test) << "\n";
  }

  std::cout << "\nDone. Lower GMQ is better (1.0 = perfect estimates).\n";
  return 0;
}
