// Quickstart: adapt a learned cardinality estimator to workload and data
// drifts.
//
// Builds a PRSA-like table, trains an LM-mlp estimator on workload w1, then
// walks Warper through the paper's drift taxonomy in three acts:
//   act 1  the workload drifts to w3 and queries trickle in slowly — Warper
//          detects c2 (workload drift, inadequate queries) and backfills
//          with generated queries;
//   act 2  the workload drifts again (w2) once enough queries have
//          accumulated (n_new >= gamma) — this drift is c4 and the model
//          updates from real queries alone;
//   act 3  the data drifts (sort by a column, truncate half, §4.1.2) — the
//          canary telemetry flags c1 and pool labels are re-annotated.
// Prints GMQ after each adaptation step plus the per-phase timing breakdown
// of the last invocation.
//
// Set WARPER_TRACE=/tmp/quickstart_trace.json to capture every phase of
// every invocation as a Chrome trace-event file (open in chrome://tracing
// or https://ui.perfetto.dev; see README "Observability").
//
// Set WARPER_ERRLOG=/tmp/quickstart_errlog.json to dump the per-template
// error log (every query template's running q-error stats) as JSON at exit.
#include <iostream>

#include "ce/lm.h"
#include "ce/metrics.h"
#include "ce/query_domain.h"
#include "core/warper.h"
#include "storage/annotator.h"
#include "storage/data_drift.h"
#include "storage/datasets.h"
#include "util/report.h"
#include "util/rng.h"
#include "workload/generator.h"

using namespace warper;  // NOLINT — example brevity

namespace {

// Annotated LabeledExamples for `n` predicates from the given method.
std::vector<ce::LabeledExample> MakeExamples(
    const storage::Table& table, const storage::Annotator& annotator,
    const ce::SingleTableDomain& domain, workload::GenMethod method, size_t n,
    util::Rng* rng) {
  std::vector<storage::RangePredicate> preds =
      workload::GenerateWorkload(table, {method}, n, rng);
  std::vector<int64_t> counts = annotator.BatchCount(preds);
  std::vector<ce::LabeledExample> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = {domain.FeaturizePredicate(preds[i]), counts[i]};
  }
  return out;
}

void PrintStep(const std::string& label,
               const core::Warper::InvocationResult& result, double gmq) {
  std::cout << label << ": mode=" << result.mode.ToString()
            << " generated=" << result.generated
            << " annotated=" << result.annotated << " GMQ=" << gmq << "\n";
}

}  // namespace

int main() {
  util::Rng rng(7);

  // 1. A dataset and its annotator (the ground-truth oracle A).
  storage::Table table = storage::MakePrsa(/*rows=*/40000, /*seed=*/7);
  storage::Annotator annotator(&table);
  ce::SingleTableDomain domain(&annotator);

  // Canary predicates watched for data drift (the telemetry a DBMS would
  // report); their baseline cardinalities are taken before any drift.
  std::vector<storage::RangePredicate> canaries =
      storage::MakeCanaryPredicates(table, /*n=*/16, &rng);
  std::vector<int64_t> canary_baseline = annotator.BatchCount(canaries);

  // 2. Train the CE model M on the historical workload (w1).
  std::vector<ce::LabeledExample> train = MakeExamples(
      table, annotator, domain, workload::GenMethod::kW1, 800, &rng);
  ce::LmMlp model(domain.FeatureDim(), ce::LmMlpConfig{}, /*seed=*/7);
  {
    nn::Matrix x;
    std::vector<double> y;
    ce::ExamplesToMatrix(train, &x, &y);
    model.Train(x, y);
  }

  // 3. The workload drifts to w3; a held-out test set measures accuracy.
  std::vector<ce::LabeledExample> test = MakeExamples(
      table, annotator, domain, workload::GenMethod::kW3, 150, &rng);
  std::cout << "GMQ on training workload (w1): "
            << ce::ModelGmq(model, train) << "\n";
  std::cout << "GMQ after drift to w3, unadapted: "
            << ce::ModelGmq(model, test) << "\n\n";

  // 4. Warper adapts M as new w3 queries trickle in. gamma = 150 keeps the
  // example short: three 48-query steps stay under it (c2); by act 2 the
  // window has crossed it (c4).
  core::WarperConfig config;
  config.n_p = 200;
  config.gamma = 150;
  // Publish per-template error gauges (warper.template.<fp>.*) so the
  // offender dump below has live health verdicts to report.
  config.tracker.template_metrics = true;
  if (Status st = config.Validate(); !st.ok()) {
    std::cerr << "bad config: " << st.ToString() << "\n";
    return 1;
  }
  core::Warper warper(&domain, &model, config);
  if (Status st = warper.Initialize(train); !st.ok()) {
    std::cerr << "Initialize failed: " << st.ToString() << "\n";
    return 1;
  }

  // Act 1: workload drift while query-starved (n_new < gamma) — c2.
  for (int step = 1; step <= 3; ++step) {
    core::Warper::Invocation invocation;
    invocation.new_queries = MakeExamples(table, annotator, domain,
                                          workload::GenMethod::kW3, 48, &rng);
    Result<core::Warper::InvocationResult> invoked = warper.Invoke(invocation);
    if (!invoked.ok()) {
      std::cerr << "Invoke failed: " << invoked.status().ToString() << "\n";
      return 1;
    }
    PrintStep("step " + std::to_string(step), invoked.ValueOrDie(),
              ce::ModelGmq(model, test));
  }

  // Act 2: the workload drifts again, to w2, with the query window now
  // adequate — c4, adaptation from real queries alone. Identification can
  // lag a step: the accuracy window (the most recent labeled arrivals) still
  // holds adapted-era w3 queries until the w2 arrivals displace them.
  test = MakeExamples(table, annotator, domain, workload::GenMethod::kW2, 150,
                      &rng);
  std::cout << "\nworkload drifts again (w2); unadapted GMQ = "
            << ce::ModelGmq(model, test) << "\n";
  for (int step = 4; step <= 5; ++step) {
    core::Warper::Invocation invocation;
    invocation.new_queries = MakeExamples(table, annotator, domain,
                                          workload::GenMethod::kW2, 48, &rng);
    Result<core::Warper::InvocationResult> invoked = warper.Invoke(invocation);
    if (!invoked.ok()) {
      std::cerr << "Invoke failed: " << invoked.status().ToString() << "\n";
      return 1;
    }
    PrintStep("step " + std::to_string(step), invoked.ValueOrDie(),
              ce::ModelGmq(model, test));
  }

  // Act 3: the data drifts underneath the model — the paper's c1 drift
  // (sort by a column, truncate to half). Every stored label is stale; the
  // canary shift tells Warper so.
  storage::SortTruncateHalf(&table, /*col=*/0);
  double canary_shift =
      storage::CanaryShift(annotator, canaries, canary_baseline);
  std::cout << "\ndata drift: sort+truncate, canary shift = "
            << util::FormatDouble(canary_shift, 2) << "\n";
  // The old test set's labels are stale too; measure against a fresh one.
  test = MakeExamples(table, annotator, domain, workload::GenMethod::kW2, 150,
                      &rng);

  core::Warper::Invocation drifted;
  drifted.new_queries = MakeExamples(table, annotator, domain,
                                     workload::GenMethod::kW2, 48, &rng);
  drifted.data_changed_fraction = 0.5;  // half the rows are gone
  drifted.canary_shift = canary_shift;
  Result<core::Warper::InvocationResult> invoked = warper.Invoke(drifted);
  if (!invoked.ok()) {
    std::cerr << "Invoke failed: " << invoked.status().ToString() << "\n";
    return 1;
  }
  const core::Warper::InvocationResult& result = invoked.ValueOrDie();
  PrintStep("step 6", result, ce::ModelGmq(model, test));

  // Per-phase cost of the last invocation (InvocationResult::timing). Wall
  // far above CPU means the phase waited on pool workers.
  std::cout << "\nstep 6 phase breakdown (wall ms / cpu ms):\n";
  for (const core::Warper::PhaseTiming& p : result.timing.phases) {
    std::cout << "  " << p.name << ": "
              << util::FormatDouble(p.wall_seconds * 1000.0, 2) << " / "
              << util::FormatDouble(p.cpu_seconds * 1000.0, 2) << "\n";
  }

  // Which query templates hurt the most across the whole drift walk? The
  // tracker fingerprints each labeled query by its predicate structure
  // (columns + operator kinds, constants excluded) and keeps running
  // q-error stats per template.
  std::cout << "\nworst query templates by error EWMA:\n"
            << warper.tracker().OffendersTextDump(5);

  std::cout << "\nDone. Lower GMQ is better (1.0 = perfect estimates).\n";
  return 0;
}
