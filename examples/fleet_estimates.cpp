// Multi-tenant serving: one ServingFleet hosting four tenants on a shared
// thread budget.
//
// Each tenant is its own Warper (own model clone, own snapshot store) but
// the fleet runs them all on ONE dispatch pool and ONE prioritized
// background-adaptation executor — the thread count is O(cores), not
// O(tenants). The walkthrough:
//   1. register four tenants and Start() the fleet,
//   2. route EstimateRequests by tenant id (and by predicate hash),
//   3. drift ONE tenant's workload and submit adaptation passes for all
//      four — the executor schedules the drifted tenant first (drift
//      severity × traffic priority) and its publish hot-swaps only that
//      tenant's snapshot, bumping the fleet-wide epoch while the siblings
//      keep serving version 1 untouched.
#include <iostream>
#include <memory>
#include <vector>

#include "ce/lm.h"
#include "ce/query_domain.h"
#include "core/warper.h"
#include "serve/fleet.h"
#include "storage/annotator.h"
#include "storage/datasets.h"
#include "util/rng.h"
#include "workload/generator.h"

using namespace warper;  // NOLINT — example brevity

namespace {

std::vector<ce::LabeledExample> MakeExamples(
    const storage::Table& table, const storage::Annotator& annotator,
    const ce::SingleTableDomain& domain, workload::GenMethod method, size_t n,
    util::Rng* rng) {
  std::vector<storage::RangePredicate> preds =
      workload::GenerateWorkload(table, {method}, n, rng);
  std::vector<int64_t> counts = annotator.BatchCount(preds);
  std::vector<ce::LabeledExample> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = {domain.FeaturizePredicate(preds[i]), counts[i]};
  }
  return out;
}

}  // namespace

int main() {
  constexpr size_t kTenants = 4;
  util::Rng rng(13);
  storage::Table table = storage::MakePrsa(/*rows=*/12000, /*seed=*/13);
  storage::Annotator annotator(&table);
  ce::SingleTableDomain domain(&annotator);

  // One trained base model; each tenant serves and adapts its own clone.
  std::vector<ce::LabeledExample> train = MakeExamples(
      table, annotator, domain, workload::GenMethod::kW1, 400, &rng);
  ce::LmMlpConfig model_config;
  model_config.hidden = {64, 64};
  model_config.train_epochs = 4;
  ce::LmMlp base(domain.FeatureDim(), model_config, /*seed=*/13);
  {
    nn::Matrix x;
    std::vector<double> y;
    ce::ExamplesToMatrix(train, &x, &y);
    base.Train(x, y);
  }

  core::WarperConfig config;
  config.hidden_units = 16;
  config.hidden_layers = 1;
  config.embedding_dim = 8;
  config.n_i = 5;
  config.n_p = 50;
  config.serve.batch_max = 1;  // inline fast path per tenant
  config.serve.adapt_threads = 2;
  config.serve.tenant_queue_depth = 128;

  std::vector<std::unique_ptr<ce::CardinalityEstimator>> models;
  std::vector<std::unique_ptr<core::Warper>> warpers;
  serve::ServingFleet fleet(config.serve);
  for (uint64_t t = 0; t < kTenants; ++t) {
    models.push_back(base.Clone());
    warpers.push_back(
        std::make_unique<core::Warper>(&domain, models.back().get(), config));
    if (Status st = warpers.back()->Initialize(train); !st.ok()) {
      std::cerr << "Initialize failed: " << st.ToString() << "\n";
      return 1;
    }
    if (Status st = fleet.AddTenant(t, warpers.back().get()); !st.ok()) {
      std::cerr << "AddTenant failed: " << st.ToString() << "\n";
      return 1;
    }
  }
  if (Status st = fleet.Start(); !st.ok()) {
    std::cerr << "Start failed: " << st.ToString() << "\n";
    return 1;
  }
  std::cout << "fleet up: " << fleet.NumTenants() << " tenants, epoch "
            << fleet.Epoch() << " (one publish per tenant at Start)\n";

  // Routed traffic: explicit tenant ids, then predicate-hash routing for
  // callers that shard one logical workload without ids.
  std::vector<ce::LabeledExample> probes = MakeExamples(
      table, annotator, domain, workload::GenMethod::kW1, 32, &rng);
  for (uint64_t t = 0; t < kTenants; ++t) {
    serve::EstimateRequest request;
    request.tenant_id = t;
    request.features = probes[t].features;
    Result<serve::EstimateResponse> response = fleet.Estimate(request);
    if (!response.ok()) {
      std::cerr << "estimate failed: " << response.status().ToString() << "\n";
      return 1;
    }
    std::cout << "tenant " << t << ": est=" << response.ValueOrDie().estimate
              << " v" << response.ValueOrDie().version << "\n";
  }
  size_t hash_hits[kTenants] = {0, 0, 0, 0};
  for (const ce::LabeledExample& ex : probes) {
    serve::EstimateRequest request;
    request.features = ex.features;
    Result<serve::EstimateResponse> response = fleet.EstimateHashed(request);
    if (response.ok()) ++hash_hits[response.ValueOrDie().tenant_id];
  }
  std::cout << "hash routing spread:";
  for (size_t t = 0; t < kTenants; ++t) std::cout << " " << hash_hits[t];
  std::cout << "\n";

  // Drift tenant 0's workload; the other three see familiar queries. All
  // four passes go to the ONE shared executor.
  std::vector<ce::LabeledExample> drifted = MakeExamples(
      table, annotator, domain, workload::GenMethod::kW3, 48, &rng);
  std::vector<ce::LabeledExample> familiar = MakeExamples(
      table, annotator, domain, workload::GenMethod::kW1, 48, &rng);
  const uint64_t epoch_before = fleet.Epoch();
  std::vector<std::future<Result<serve::AdaptationOutcome>>> passes;
  for (uint64_t t = 0; t < kTenants; ++t) {
    core::Warper::Invocation invocation;
    invocation.new_queries = (t == 0) ? drifted : familiar;
    passes.push_back(fleet.SubmitInvocation(t, std::move(invocation)));
  }
  for (uint64_t t = 0; t < kTenants; ++t) {
    Result<serve::AdaptationOutcome> outcome = passes[t].get();
    if (!outcome.ok()) {
      std::cerr << "adaptation failed: " << outcome.status().ToString()
                << "\n";
      return 1;
    }
    const serve::AdaptationOutcome& o = outcome.ValueOrDie();
    std::cout << "tenant " << t << ": mode=" << o.result.mode.ToString()
              << " severity=" << o.result.drift_severity
              << (o.published ? " PUBLISHED v" + std::to_string(o.version)
                  : o.rolled_back ? std::string(" ROLLED BACK")
                                  : std::string(" unchanged"))
              << "\n";
  }
  std::cout << "epoch " << epoch_before << " -> " << fleet.Epoch()
            << " (each publish bumps the fleet-wide epoch; siblings of a "
               "swapping tenant never stall)\n";

  fleet.Stop();
  return 0;
}
