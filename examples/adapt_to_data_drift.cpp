// Example: adapting a CE model through a *data* drift (the paper's c1).
//
// A HIGGS-like table is sorted by one column and truncated to half its rows
// — every cardinality label the model was trained on is now stale. Warper
// detects the drift from database telemetry (changed-row fraction + canary
// predicates), marks the pool labels stale, and uses its stratified-by-error
// picker to decide which queries to re-annotate under a budget, instead of
// relabeling everything.
#include <iostream>

#include "ce/lm.h"
#include "ce/metrics.h"
#include "ce/query_domain.h"
#include "core/warper.h"
#include "storage/annotator.h"
#include "storage/data_drift.h"
#include "storage/datasets.h"
#include "util/rng.h"
#include "workload/generator.h"

using namespace warper;  // NOLINT — example brevity

namespace {

std::vector<ce::LabeledExample> MakeExamples(
    const storage::Table& table, const storage::Annotator& annotator,
    const ce::SingleTableDomain& domain, size_t n, util::Rng* rng,
    bool with_labels) {
  std::vector<storage::RangePredicate> preds = workload::GenerateWorkload(
      table,
      {workload::GenMethod::kW1, workload::GenMethod::kW3,
       workload::GenMethod::kW5},
      n, rng);
  std::vector<int64_t> counts(n, -1);
  if (with_labels) counts = annotator.BatchCount(preds);
  std::vector<ce::LabeledExample> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = {domain.FeaturizePredicate(preds[i]), counts[i]};
  }
  return out;
}

}  // namespace

int main() {
  util::Rng rng(21);
  storage::Table table = storage::MakeHiggs(30000, 21);
  storage::Annotator annotator(&table);
  ce::SingleTableDomain domain(&annotator);

  // Train M on the pre-drift data.
  std::vector<ce::LabeledExample> train =
      MakeExamples(table, annotator, domain, 800, &rng, true);
  ce::LmMlp model(domain.FeatureDim(), ce::LmMlpConfig{}, 21);
  {
    nn::Matrix x;
    std::vector<double> y;
    ce::ExamplesToMatrix(train, &x, &y);
    model.Train(x, y);
  }

  core::WarperConfig config;
  config.n_p = 150;  // re-annotation budget per invocation is scarce
  if (Status st = config.Validate(); !st.ok()) {
    std::cerr << "bad config: " << st.ToString() << "\n";
    return 1;
  }
  core::Warper warper(&domain, &model, config);
  if (Status st = warper.Initialize(train); !st.ok()) {
    std::cerr << "Initialize failed: " << st.ToString() << "\n";
    return 1;
  }

  // Database telemetry before the drift: canaries + change counter.
  std::vector<storage::RangePredicate> canaries =
      storage::MakeCanaryPredicates(table, 12, &rng);
  std::vector<int64_t> canary_baseline = annotator.BatchCount(canaries);
  uint64_t change_snapshot = table.ChangeCounter();

  // The drift: sort by the first column, drop the upper half of the rows.
  storage::SortTruncateHalf(&table, 0);
  double changed = table.ChangedFractionSince(change_snapshot);
  double canary_shift = storage::CanaryShift(annotator, canaries,
                                             canary_baseline);
  std::cout << "Data drift applied: changed-row fraction="
            << changed << ", canary cardinality shift=" << canary_shift
            << "\n";

  // Post-drift evaluation set (fresh ground truth).
  std::vector<ce::LabeledExample> test =
      MakeExamples(table, annotator, domain, 150, &rng, true);
  std::cout << "GMQ with stale model on post-drift data: "
            << ce::ModelGmq(model, test) << "\n";

  for (int step = 1; step <= 4; ++step) {
    core::Warper::Invocation invocation;
    // The workload has NOT drifted; queries keep arriving, but their labels
    // are expensive to recompute — Warper picks which ones to pay for.
    invocation.new_queries =
        MakeExamples(table, annotator, domain, 40, &rng, /*with_labels=*/false);
    invocation.annotation_budget = 60;
    if (step == 1) {
      invocation.data_changed_fraction = changed;
      invocation.canary_shift = canary_shift;
    }
    Result<core::Warper::InvocationResult> invoked = warper.Invoke(invocation);
    if (!invoked.ok()) {
      std::cerr << "Invoke failed: " << invoked.status().ToString() << "\n";
      return 1;
    }
    const core::Warper::InvocationResult& result = invoked.ValueOrDie();
    std::cout << "step " << step << ": mode=" << result.mode.ToString()
              << " annotated=" << result.annotated
              << " GMQ=" << ce::ModelGmq(model, test) << "\n";
  }
  std::cout << "\nThe model recovered using only a few hundred re-annotated\n"
               "queries instead of relabeling the full training corpus.\n";
  return 0;
}
