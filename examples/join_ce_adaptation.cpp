// Example: adapting a join cardinality estimator (MSCN over a star schema).
//
// Mirrors the paper's Table 7d experiment: an MSCN model estimates the
// cardinality of star joins (title ⨝ cast_info ⨝ movie_companies) with
// range predicates on every participating table. The workload drifts from
// narrow data-supported ranges (w4) to uniform random ranges (w1); Warper
// adapts the black-box model with only a trickle of new queries.
#include <iostream>

#include "ce/metrics.h"
#include "ce/mscn.h"
#include "ce/query_domain.h"
#include "core/warper.h"
#include "storage/datasets.h"
#include "util/rng.h"
#include "workload/join_workload.h"

using namespace warper;  // NOLINT — example brevity

namespace {

std::vector<ce::LabeledExample> MakeExamples(
    const storage::StarSchema& schema, const storage::JoinAnnotator& annotator,
    const ce::StarJoinDomain& domain, workload::GenMethod method, size_t n,
    util::Rng* rng) {
  std::vector<storage::JoinQuery> queries =
      workload::GenerateJoinWorkload(schema, method, n, rng);
  std::vector<int64_t> counts = annotator.BatchCount(queries);
  std::vector<ce::LabeledExample> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = {domain.FeaturizeQuery(queries[i]), counts[i]};
  }
  return out;
}

}  // namespace

int main() {
  util::Rng rng(41);
  storage::ImdbTables tables = storage::MakeImdb(800, 41);
  storage::StarSchema schema = tables.Schema();
  storage::JoinAnnotator annotator(&schema);
  ce::StarJoinDomain domain(&annotator);

  std::cout << "Star schema: title(" << tables.title.NumRows()
            << ") ⨝ cast_info(" << tables.cast_info.NumRows()
            << ") ⨝ movie_companies(" << tables.movie_companies.NumRows()
            << ")\n";

  // Train MSCN on the w4 join workload.
  std::vector<ce::LabeledExample> train = MakeExamples(
      schema, annotator, domain, workload::GenMethod::kW4, 500, &rng);
  ce::MscnConfig config = ce::MscnConfig::StarJoin(
      schema.center->NumColumns(), {schema.facts[0].table->NumColumns(),
                                    schema.facts[1].table->NumColumns()});
  ce::Mscn model(config, 41);
  {
    nn::Matrix x;
    std::vector<double> y;
    ce::ExamplesToMatrix(train, &x, &y);
    model.Train(x, y);
  }

  std::vector<ce::LabeledExample> test = MakeExamples(
      schema, annotator, domain, workload::GenMethod::kW1, 100, &rng);
  std::cout << "GMQ on training workload (w4): " << ce::ModelGmq(model, train)
            << "\nGMQ after drift to w1, unadapted: "
            << ce::ModelGmq(model, test) << "\n";

  // Warper treats the join estimator as the same kind of black box.
  core::WarperConfig wconfig;
  wconfig.n_p = 300;
  if (Status st = wconfig.Validate(); !st.ok()) {
    std::cerr << "bad config: " << st.ToString() << "\n";
    return 1;
  }
  core::Warper warper(&domain, &model, wconfig);
  if (Status st = warper.Initialize(train); !st.ok()) {
    std::cerr << "Initialize failed: " << st.ToString() << "\n";
    return 1;
  }

  for (int step = 1; step <= 4; ++step) {
    core::Warper::Invocation invocation;
    // One query per minute in the paper — a trickle.
    invocation.new_queries = MakeExamples(schema, annotator, domain,
                                          workload::GenMethod::kW1, 12, &rng);
    Result<core::Warper::InvocationResult> invoked = warper.Invoke(invocation);
    if (!invoked.ok()) {
      std::cerr << "Invoke failed: " << invoked.status().ToString() << "\n";
      return 1;
    }
    const core::Warper::InvocationResult& result = invoked.ValueOrDie();
    std::cout << "step " << step << ": mode=" << result.mode.ToString()
              << " generated=" << result.generated
              << " GMQ=" << ce::ModelGmq(model, test) << "\n";
  }
  return 0;
}
