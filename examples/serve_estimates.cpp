// Serving: concurrent cardinality estimates in front of a live Warper.
//
// Trains an LM-mlp on workload w1, wraps it in an EstimationServer, then
// runs optimizer traffic and adaptation at the same time:
//   - four producer threads stream estimate requests through the
//     micro-batcher (one GEMM per coalesced batch) while
//   - the background adaptation thread ingests drifted w3 queries via
//     SubmitInvocation, gates each adapted model on a fixed eval set, and
//     hot-swaps the served snapshot when the gate passes.
// Producers never block on a swap: they read versioned immutable snapshots
// published RCU-style. The final pass demonstrates the §3.4 rollback — an
// adversarial eval set makes any update look like a regression, so the
// server restores the last good weights instead of publishing.
#include <atomic>
#include <cmath>
#include <iostream>
#include <thread>
#include <vector>

#include "ce/lm.h"
#include "ce/metrics.h"
#include "ce/query_domain.h"
#include "core/warper.h"
#include "serve/server.h"
#include "storage/annotator.h"
#include "storage/datasets.h"
#include "util/rng.h"
#include "workload/generator.h"

using namespace warper;  // NOLINT — example brevity

namespace {

std::vector<ce::LabeledExample> MakeExamples(
    const storage::Table& table, const storage::Annotator& annotator,
    const ce::SingleTableDomain& domain, workload::GenMethod method, size_t n,
    util::Rng* rng) {
  std::vector<storage::RangePredicate> preds =
      workload::GenerateWorkload(table, {method}, n, rng);
  std::vector<int64_t> counts = annotator.BatchCount(preds);
  std::vector<ce::LabeledExample> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = {domain.FeaturizePredicate(preds[i]), counts[i]};
  }
  return out;
}

}  // namespace

int main() {
  util::Rng rng(11);
  storage::Table table = storage::MakePrsa(/*rows=*/30000, /*seed=*/11);
  storage::Annotator annotator(&table);
  ce::SingleTableDomain domain(&annotator);

  // Train M on the historical workload.
  std::vector<ce::LabeledExample> train = MakeExamples(
      table, annotator, domain, workload::GenMethod::kW1, 800, &rng);
  ce::LmMlp model(domain.FeatureDim(), ce::LmMlpConfig{}, /*seed=*/11);
  {
    nn::Matrix x;
    std::vector<double> y;
    ce::ExamplesToMatrix(train, &x, &y);
    model.Train(x, y);
  }

  // The controller plus serving knobs: coalesce up to 16 requests per
  // forward pass, shed when more than 512 are queued.
  core::WarperConfig config;
  config.n_p = 200;
  config.serve.batch_max = 16;
  config.serve.queue_capacity = 512;
  config.serve.overflow = core::ServeConfig::Overflow::kShed;
  core::Warper warper(&domain, &model, config);
  if (Status st = warper.Initialize(train); !st.ok()) {
    std::cerr << "Initialize failed: " << st.ToString() << "\n";
    return 1;
  }

  // Gate adaptations on a held-out slice of the drifted workload: an
  // adaptation only ships if it does not regress on this benchmark.
  std::vector<ce::LabeledExample> eval = MakeExamples(
      table, annotator, domain, workload::GenMethod::kW3, 150, &rng);
  serve::EstimationServer server(&warper);
  if (Status st = server.SetEvalSet(eval); !st.ok()) {
    std::cerr << "SetEvalSet failed: " << st.ToString() << "\n";
    return 1;
  }
  if (Status st = server.Start(); !st.ok()) {
    std::cerr << "Start failed: " << st.ToString() << "\n";
    return 1;
  }
  std::cout << "serving version " << server.CurrentVersion()
            << " (gate GMQ on eval set: "
            << server.store().Current()->gmq() << ")\n";

  // Optimizer traffic: four producers streaming drifted-workload estimates
  // while adaptation runs underneath them.
  std::vector<std::vector<double>> request_features;
  for (const ce::LabeledExample& ex :
       MakeExamples(table, annotator, domain, workload::GenMethod::kW3, 256,
                    &rng)) {
    request_features.push_back(ex.features);
  }
  std::atomic<bool> stop_traffic{false};
  std::atomic<uint64_t> served{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&, p] {
      util::Rng local(100 + p);
      while (!stop_traffic.load()) {
        size_t i = static_cast<size_t>(local.UniformInt(
            0, static_cast<int64_t>(request_features.size()) - 1));
        serve::EstimateRequest request;
        request.features = request_features[i];
        if (server.Estimate(request).ok()) served.fetch_add(1);
      }
    });
  }

  // Adaptation under load: three batches of drifted queries arrive; each
  // pass that clears the gate hot-swaps a new snapshot under the producers.
  for (int step = 1; step <= 3; ++step) {
    core::Warper::Invocation invocation;
    invocation.new_queries = MakeExamples(table, annotator, domain,
                                          workload::GenMethod::kW3, 48, &rng);
    Result<serve::AdaptationOutcome> outcome =
        server.SubmitInvocation(std::move(invocation)).get();
    if (!outcome.ok()) {
      std::cerr << "adaptation failed: " << outcome.status().ToString()
                << "\n";
      return 1;
    }
    const serve::AdaptationOutcome& o = outcome.ValueOrDie();
    std::cout << "step " << step << ": mode=" << o.result.mode.ToString()
              << " gate " << o.gate_before << " -> " << o.gate_after
              << (o.published ? " PUBLISHED v" + std::to_string(o.version)
                  : o.rolled_back ? std::string(" ROLLED BACK")
                                  : std::string(" unchanged"))
              << "\n";
  }
  stop_traffic.store(true);
  for (std::thread& t : producers) t.join();
  std::cout << "served " << served.load()
            << " estimates concurrently with adaptation; final version "
            << server.CurrentVersion() << "\n";

  // Rollback demo: label an eval set with the model's own estimates — the
  // served model is "perfect" on it, so any further weight movement gates
  // as a regression and the server restores the last good version.
  std::vector<ce::LabeledExample> adversarial;
  for (const ce::LabeledExample& ex : eval) {
    double est = model.EstimateCardinality(ex.features);
    if (est > 100.0) {
      adversarial.push_back(
          {ex.features, static_cast<int64_t>(std::llround(est))});
    }
  }
  server.Stop();
  core::WarperConfig strict = config;
  strict.serve.regression_tolerance = 1.0;
  core::Warper warper2(&domain, &model, strict);
  if (Status st = warper2.Initialize(train); !st.ok()) {
    std::cerr << "Initialize failed: " << st.ToString() << "\n";
    return 1;
  }
  serve::EstimationServer guard(&warper2);
  if (!guard.SetEvalSet(adversarial).ok() || !guard.Start().ok()) {
    std::cerr << "guard server failed to start\n";
    return 1;
  }
  core::Warper::Invocation invocation;
  invocation.new_queries = MakeExamples(table, annotator, domain,
                                        workload::GenMethod::kW2, 60, &rng);
  Result<serve::AdaptationOutcome> guarded =
      guard.SubmitInvocation(std::move(invocation)).get();
  if (!guarded.ok()) {
    std::cerr << "adaptation failed: " << guarded.status().ToString() << "\n";
    return 1;
  }
  std::cout << "strict gate: " << guarded.ValueOrDie().gate_before << " -> "
            << guarded.ValueOrDie().gate_after
            << (guarded.ValueOrDie().rolled_back
                    ? " => rolled back, still serving v"
                    : " => serving v")
            << guard.CurrentVersion() << "\n";
  guard.Stop();
  return 0;
}
