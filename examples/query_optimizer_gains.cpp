// Example: end-to-end query-performance gains (the paper's §4.2 story).
//
// A query optimizer picks physical plans for the Figure-1 SPJ template from
// the CE model's estimates. Under a workload drift the estimates degrade,
// the optimizer under-grants the hash-join build and picks wrong bitmap
// sides, and simulated query latency regresses. Adapting the model with
// Warper shortens the regression window.
#include <iostream>

#include "ce/lm.h"
#include "ce/metrics.h"
#include "ce/query_domain.h"
#include "core/warper.h"
#include "qo/executor.h"
#include "storage/annotator.h"
#include "storage/datasets.h"
#include "util/rng.h"
#include "workload/generator.h"

using namespace warper;  // NOLINT — example brevity

int main() {
  util::Rng rng(31);
  storage::TpchTables tables = storage::MakeTpch(6000, 31);
  storage::Annotator l_annotator(&tables.lineitem);
  ce::SingleTableDomain domain(&l_annotator);

  // Single-column training workload → multi-column drifted workload.
  workload::GeneratorOptions train_opts;
  train_opts.min_constrained_cols = train_opts.max_constrained_cols = 1;
  workload::GeneratorOptions drifted_opts;
  drifted_opts.min_constrained_cols = 2;
  drifted_opts.max_constrained_cols = 3;

  auto make_examples = [&](workload::GenMethod method, size_t n,
                           const workload::GeneratorOptions& opts) {
    std::vector<storage::RangePredicate> preds =
        workload::GenerateWorkload(tables.lineitem, {method}, n, &rng, opts);
    std::vector<int64_t> counts = l_annotator.BatchCount(preds);
    std::vector<ce::LabeledExample> out(n);
    for (size_t i = 0; i < n; ++i) {
      out[i] = {domain.FeaturizePredicate(preds[i]), counts[i]};
    }
    return out;
  };

  std::vector<ce::LabeledExample> train =
      make_examples(workload::GenMethod::kW1, 600, train_opts);
  ce::LmMlp model(domain.FeatureDim(), ce::LmMlpConfig{}, 31);
  {
    nn::Matrix x;
    std::vector<double> y;
    ce::ExamplesToMatrix(train, &x, &y);
    model.Train(x, y);
  }

  // Drifted test queries drive the optimizer.
  std::vector<storage::RangePredicate> test_preds =
      workload::GenerateWorkload(tables.lineitem, {workload::GenMethod::kW3},
                                 60, &rng, drifted_opts);
  std::vector<ce::LabeledExample> test;
  for (size_t i = 0; i < test_preds.size(); ++i) {
    test.push_back({domain.FeaturizePredicate(test_preds[i]),
                    l_annotator.Count(test_preds[i])});
  }

  qo::Optimizer optimizer;
  qo::Executor executor(&tables);

  auto evaluate = [&]() {
    double total = 0.0, optimal = 0.0;
    int spills = 0;
    for (size_t i = 0; i < test_preds.size(); ++i) {
      qo::SpjQuery query;
      query.lineitem_pred = test_preds[i];
      query.orders_pred = storage::RangePredicate::FullRange(tables.orders);
      qo::ActualCardinalities actual = qo::ComputeActuals(tables, query);
      double est_l = model.EstimateCardinality(test[i].features);
      qo::PhysicalPlan plan = optimizer.Plan(
          est_l, static_cast<double>(tables.orders.NumRows()),
          qo::Scenario::kBufferSpill);
      qo::ExecutionResult run = executor.Execute(actual, plan);
      total += run.latency_ms;
      spills += run.spilled ? 1 : 0;
      optimal += executor
                     .RunWithTrueCardinalities(actual, optimizer,
                                               qo::Scenario::kBufferSpill)
                     .latency_ms;
    }
    double n = static_cast<double>(test_preds.size());
    std::cout << "  GMQ=" << ce::ModelGmq(model, test)
              << "  avg latency=" << total / n << " ms (optimal "
              << optimal / n << " ms), " << spills << "/"
              << test_preds.size() << " queries spilled\n";
  };

  std::cout << "Unadapted model on the drifted workload:\n";
  evaluate();

  core::WarperConfig config;
  if (Status st = config.Validate(); !st.ok()) {
    std::cerr << "bad config: " << st.ToString() << "\n";
    return 1;
  }
  core::Warper warper(&domain, &model, config);
  if (Status st = warper.Initialize(train); !st.ok()) {
    std::cerr << "Initialize failed: " << st.ToString() << "\n";
    return 1;
  }
  for (int step = 1; step <= 4; ++step) {
    core::Warper::Invocation invocation;
    invocation.new_queries =
        make_examples(workload::GenMethod::kW3, 48, drifted_opts);
    Result<core::Warper::InvocationResult> invoked = warper.Invoke(invocation);
    if (!invoked.ok()) {
      std::cerr << "Invoke failed: " << invoked.status().ToString() << "\n";
      return 1;
    }
    std::cout << "After adaptation step " << step << ":\n";
    evaluate();
  }
  return 0;
}
