// Shared plumbing for the per-table / per-figure bench binaries.
//
// Every bench prints the same rows/series the paper reports, on the
// synthetic substrates (see DESIGN.md §3). Set WARPER_BENCH_FAST=1 to run a
// reduced-scale pass (smaller tables, fewer repeats) while iterating.
#ifndef WARPER_BENCH_BENCH_COMMON_H_
#define WARPER_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "eval/experiment.h"
#include "storage/datasets.h"
#include "util/errlog.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/report.h"

namespace warper::bench {

struct BenchScale {
  size_t table_rows = 30000;
  size_t train_size = 1000;
  size_t test_size = 150;
  size_t steps = 5;
  size_t queries_per_step = 72;  // 6 min per step at 1 query / 5 s
  int repeats = 2;
};

inline bool FastMode() {
  const char* fast = std::getenv("WARPER_BENCH_FAST");
  return fast != nullptr && std::string(fast) != "0";
}

inline BenchScale GetScale() {
  BenchScale scale;
  if (FastMode()) {
    scale.table_rows = 8000;
    scale.train_size = 400;
    scale.test_size = 80;
    scale.steps = 3;
    scale.queries_per_step = 40;
    scale.repeats = 1;
  }
  return scale;
}

inline eval::ExperimentConfig DefaultConfig(const BenchScale& scale,
                                            uint64_t seed) {
  eval::ExperimentConfig config;
  config.train_size = scale.train_size;
  config.test_size = scale.test_size;
  config.steps = scale.steps;
  config.queries_per_step = scale.queries_per_step;
  config.repeats = scale.repeats;
  config.seed = seed;
  return config;
}

// Named dataset factories at bench scale.
inline std::function<storage::Table(uint64_t)> DatasetFactory(
    const std::string& name, size_t rows) {
  if (name == "PRSA") {
    return [rows](uint64_t seed) { return storage::MakePrsa(rows, seed); };
  }
  if (name == "Poker") {
    return [rows](uint64_t seed) { return storage::MakePoker(rows, seed); };
  }
  if (name == "Higgs") {
    return [rows](uint64_t seed) { return storage::MakeHiggs(rows, seed); };
  }
  std::cerr << "unknown dataset " << name << "\n";
  std::abort();
}

// Per-dataset workload-generator options. Poker is all-categorical with
// tiny domains, so predicates must constrain more columns for workload
// drifts to move the selectivity distribution appreciably.
inline workload::GeneratorOptions GenOptsFor(const std::string& name) {
  workload::GeneratorOptions opts;
  if (name == "Poker") {
    opts.min_constrained_cols = 2;
    opts.max_constrained_cols = 6;
  }
  return opts;
}

// Runs one drift scenario in the standard single-table LM-mlp setup every
// §4.1 row uses: dataset × workload spec × DriftSpec. The fig06/tab07c/grid
// benches all funnel through here instead of each re-assembling the spec.
inline eval::DriftExperimentResult RunTableDrift(
    const std::string& dataset, const BenchScale& scale,
    const std::string& workload_spec, const drift::DriftSpec& drift_spec,
    const std::vector<eval::Method>& methods, uint64_t seed,
    size_t annotation_budget = std::numeric_limits<size_t>::max(),
    bool compute_beta = true) {
  eval::SingleTableDriftSpec spec;
  spec.table_factory = DatasetFactory(dataset, scale.table_rows);
  spec.workload = workload::WorkloadSpec::Parse(workload_spec).ValueOrDie();
  spec.model_factory = eval::LmMlpFactory();
  spec.methods = methods;
  spec.config = DefaultConfig(scale, seed);
  spec.config.gen_opts = GenOptsFor(dataset);
  spec.config.drift = drift_spec;
  spec.config.annotation_budget_per_step = annotation_budget;
  spec.config.compute_beta = compute_beta;
  return eval::RunSingleTableDrift(spec);
}

// One paper-style result row: dataset, workload, δ_m, δ_js, Δ.5/.8/1.
inline std::vector<std::string> DeltaRow(
    const std::string& dataset, const std::string& workload,
    const std::string& model, const eval::DriftExperimentResult& result,
    const eval::MethodResult& method) {
  return {dataset,
          workload,
          model,
          util::FormatDouble(result.delta_m, 1),
          util::FormatDouble(result.delta_js, 2),
          util::FormatDouble(method.deltas.d50, 1),
          util::FormatDouble(method.deltas.d80, 1),
          util::FormatDouble(method.deltas.d100, 1)};
}

// Prints one experiment's adaptation curves (a paper-figure panel).
inline void PrintCurves(std::ostream& os, const std::string& title,
                        const eval::DriftExperimentResult& result) {
  os << "-- " << title << " (alpha=" << util::FormatDouble(result.alpha, 2)
     << ", beta=" << util::FormatDouble(result.beta, 2) << ") --\n";
  os << "   GMQ vs #queries from the new workload; [q1,q3] across repeats\n";
  for (const eval::MethodResult& m : result.methods) {
    os << "   " << m.name << ":";
    for (size_t i = 0; i < m.median.queries.size(); ++i) {
      os << " " << util::FormatDouble(m.median.queries[i], 0) << "="
         << util::FormatDouble(m.median.gmq[i], 2) << "["
         << util::FormatDouble(m.q1.gmq[i], 2) << ","
         << util::FormatDouble(m.q3.gmq[i], 2) << "]";
    }
    os << "\n";
  }
}

inline void BenchInit() { util::SetLogLevel(util::LogLevel::kWarn); }

// Streaming JSON writer for the BENCH_*.json documents. Handles commas,
// quoting and two-space indentation so each bench binary describes only its
// own fields; hand-rolled ostringstream emitters drifted in format and had
// to re-solve trailing-comma logic per file.
class JsonWriter {
 public:
  JsonWriter& BeginObject() { return Open('{', /*is_array=*/false); }
  JsonWriter& EndObject() { return Close('}'); }
  JsonWriter& BeginArray() { return Open('[', /*is_array=*/true); }
  JsonWriter& EndArray() { return Close(']'); }

  // Starts an object member; follow with a Value/Begin* call.
  JsonWriter& Key(const std::string& name) {
    Separate();
    os_ << '"' << Escaped(name) << "\": ";
    pending_key_ = true;
    return *this;
  }

  JsonWriter& Value(const std::string& s) {
    return Scalar("\"" + Escaped(s) + "\"");
  }
  JsonWriter& Value(const char* s) { return Value(std::string(s)); }
  JsonWriter& Value(bool b) { return Scalar(b ? "true" : "false"); }
  JsonWriter& Value(double v, int precision) {
    return Scalar(util::FormatDouble(v, precision));
  }
  JsonWriter& Value(uint64_t v) { return Scalar(std::to_string(v)); }
  JsonWriter& Value(int v) { return Scalar(std::to_string(v)); }

  // Embeds pre-rendered JSON verbatim (e.g. MetricsSnapshot::ToJson).
  JsonWriter& Raw(const std::string& json) { return Scalar(json); }

  size_t Depth() const { return stack_.size(); }

  // Renders with a trailing newline; valid only once nesting is balanced.
  std::string str() const { return os_.str() + "\n"; }

 private:
  struct Scope {
    bool is_array = false;
    bool empty = true;
  };

  static std::string Escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", c);
        out += buf;
      } else {
        out += c;
      }
    }
    return out;
  }

  void Indent(size_t depth) { os_ << std::string(depth * 2, ' '); }

  // Comma/newline before a key (objects) or a value (arrays); no-op at the
  // top level and directly after a Key.
  void Separate() {
    if (stack_.empty()) return;
    os_ << (stack_.back().empty ? "\n" : ",\n");
    stack_.back().empty = false;
    Indent(stack_.size());
  }

  JsonWriter& Open(char opener, bool is_array) {
    if (!pending_key_) Separate();
    pending_key_ = false;
    os_ << opener;
    stack_.push_back({is_array, true});
    return *this;
  }

  JsonWriter& Close(char closer) {
    bool was_empty = stack_.back().empty;
    stack_.pop_back();
    if (!was_empty) {
      os_ << "\n";
      Indent(stack_.size());
    }
    os_ << closer;
    return *this;
  }

  JsonWriter& Scalar(const std::string& rendered) {
    if (!pending_key_) Separate();
    pending_key_ = false;
    os_ << rendered;
    return *this;
  }

  std::ostringstream os_;
  std::vector<Scope> stack_;
  bool pending_key_ = false;
};

// p-quantile of a latency/duration sample (µs) through
// util::Histogram::Quantile on 2%-geometric buckets — the same interpolation
// the registry histograms use, replacing the sort-and-index percentile math
// the serving benches each hand-rolled.
inline double LatencyQuantile(const std::vector<double>& xs_us, double p) {
  if (xs_us.empty()) return 0.0;
  std::vector<double> bounds;
  for (double b = 0.5; b < 2e9; b *= 1.02) bounds.push_back(b);
  util::Histogram hist(std::move(bounds));
  for (double x : xs_us) hist.Observe(x);
  return hist.Quantile(p);
}

// Attaches the repo's acknowledged static debt — the per-rule entry counts
// of the committed warper-analyzer baseline — under a "static_debt" key, so
// every BENCH_*.json records the debt trajectory alongside the perf
// trajectory. Benches run from the repo root (ci.yml invokes them as
// ./build/bench/...), so the relative path resolves; anywhere else the
// counts read as zero with "baseline_read" false rather than failing the
// bench.
inline void AttachStaticDebt(JsonWriter* w) {
  static constexpr const char* kRules[] = {
      "determinism-purity", "hot-path-purity", "rcu-snapshot-lifetime",
      "result-flow"};
  std::string text;
  bool read_ok = false;
  {
    std::ifstream in("tools/warper_analyzer_baseline.json");
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      text = ss.str();
      read_ok = true;
    }
  }
  w->Key("static_debt").BeginObject();
  w->Key("baseline_read").Value(read_ok);
  int total = 0;
  for (const char* rule : kRules) {
    std::string needle = "\"rule\": \"";
    needle += rule;
    needle += '"';
    int count = 0;
    for (size_t pos = text.find(needle); pos != std::string::npos;
         pos = text.find(needle, pos + needle.size())) {
      ++count;
    }
    total += count;
    w->Key(rule).Value(count);
  }
  w->Key("total").Value(total);
  w->EndObject();
}

// Attaches the process-wide metric snapshot under a "metrics" key, indented
// to the writer's current depth, plus the static-debt counts above. Call
// while still inside the root object.
inline void AttachMetricsSnapshot(JsonWriter* w) {
  w->Key("metrics").Raw(
      util::Metrics().Snapshot().ToJson(static_cast<int>(w->Depth()) * 2));
  AttachStaticDebt(w);
}

// Attaches every registered error log (per-template running stats) under an
// "errlog" key — the same document WARPER_ERRLOG dumps at exit.
inline void AttachErrLogSnapshot(JsonWriter* w) {
  w->Key("errlog").Raw(
      util::ErrLogsToJson(static_cast<int>(w->Depth()) * 2));
}

// Mirrors the document on stdout and persists it for the CI perf
// trajectory, the shared tail of every bench main().
inline void EmitJson(const JsonWriter& w, const std::string& out_path) {
  std::string doc = w.str();
  std::cout << doc;
  std::ofstream out(out_path);
  out << doc;
  out.close();
  std::cerr << "wrote " << out_path << "\n";
}

}  // namespace warper::bench

#endif  // WARPER_BENCH_BENCH_COMMON_H_
