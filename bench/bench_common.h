// Shared plumbing for the per-table / per-figure bench binaries.
//
// Every bench prints the same rows/series the paper reports, on the
// synthetic substrates (see DESIGN.md §3). Set WARPER_BENCH_FAST=1 to run a
// reduced-scale pass (smaller tables, fewer repeats) while iterating.
#ifndef WARPER_BENCH_BENCH_COMMON_H_
#define WARPER_BENCH_BENCH_COMMON_H_

#include <cstdlib>
#include <iostream>
#include <string>

#include "eval/experiment.h"
#include "storage/datasets.h"
#include "util/logging.h"
#include "util/report.h"

namespace warper::bench {

struct BenchScale {
  size_t table_rows = 30000;
  size_t train_size = 1000;
  size_t test_size = 150;
  size_t steps = 5;
  size_t queries_per_step = 72;  // 6 min per step at 1 query / 5 s
  int repeats = 2;
};

inline bool FastMode() {
  const char* fast = std::getenv("WARPER_BENCH_FAST");
  return fast != nullptr && std::string(fast) != "0";
}

inline BenchScale GetScale() {
  BenchScale scale;
  if (FastMode()) {
    scale.table_rows = 8000;
    scale.train_size = 400;
    scale.test_size = 80;
    scale.steps = 3;
    scale.queries_per_step = 40;
    scale.repeats = 1;
  }
  return scale;
}

inline eval::ExperimentConfig DefaultConfig(const BenchScale& scale,
                                            uint64_t seed) {
  eval::ExperimentConfig config;
  config.train_size = scale.train_size;
  config.test_size = scale.test_size;
  config.steps = scale.steps;
  config.queries_per_step = scale.queries_per_step;
  config.repeats = scale.repeats;
  config.seed = seed;
  return config;
}

// Named dataset factories at bench scale.
inline std::function<storage::Table(uint64_t)> DatasetFactory(
    const std::string& name, size_t rows) {
  if (name == "PRSA") {
    return [rows](uint64_t seed) { return storage::MakePrsa(rows, seed); };
  }
  if (name == "Poker") {
    return [rows](uint64_t seed) { return storage::MakePoker(rows, seed); };
  }
  if (name == "Higgs") {
    return [rows](uint64_t seed) { return storage::MakeHiggs(rows, seed); };
  }
  std::cerr << "unknown dataset " << name << "\n";
  std::abort();
}

// Per-dataset workload-generator options. Poker is all-categorical with
// tiny domains, so predicates must constrain more columns for workload
// drifts to move the selectivity distribution appreciably.
inline workload::GeneratorOptions GenOptsFor(const std::string& name) {
  workload::GeneratorOptions opts;
  if (name == "Poker") {
    opts.min_constrained_cols = 2;
    opts.max_constrained_cols = 6;
  }
  return opts;
}

// One paper-style result row: dataset, workload, δ_m, δ_js, Δ.5/.8/1.
inline std::vector<std::string> DeltaRow(
    const std::string& dataset, const std::string& workload,
    const std::string& model, const eval::DriftExperimentResult& result,
    const eval::MethodResult& method) {
  return {dataset,
          workload,
          model,
          util::FormatDouble(result.delta_m, 1),
          util::FormatDouble(result.delta_js, 2),
          util::FormatDouble(method.deltas.d50, 1),
          util::FormatDouble(method.deltas.d80, 1),
          util::FormatDouble(method.deltas.d100, 1)};
}

// Prints one experiment's adaptation curves (a paper-figure panel).
inline void PrintCurves(std::ostream& os, const std::string& title,
                        const eval::DriftExperimentResult& result) {
  os << "-- " << title << " (alpha=" << util::FormatDouble(result.alpha, 2)
     << ", beta=" << util::FormatDouble(result.beta, 2) << ") --\n";
  os << "   GMQ vs #queries from the new workload; [q1,q3] across repeats\n";
  for (const eval::MethodResult& m : result.methods) {
    os << "   " << m.name << ":";
    for (size_t i = 0; i < m.median.queries.size(); ++i) {
      os << " " << util::FormatDouble(m.median.queries[i], 0) << "="
         << util::FormatDouble(m.median.gmq[i], 2) << "["
         << util::FormatDouble(m.q1.gmq[i], 2) << ","
         << util::FormatDouble(m.q3.gmq[i], 2) << "]";
    }
    os << "\n";
  }
}

inline void BenchInit() { util::SetLogLevel(util::LogLevel::kWarn); }

}  // namespace warper::bench

#endif  // WARPER_BENCH_BENCH_COMMON_H_
