// Table 6: adaptation cost overhead — annotation seconds/query, Warper
// module-building seconds, and average single-core CPU utilization over the
// test period at three query arrival rates, for AUG / HEM / Warper on PRSA,
// Poker and Higgs.
//
// Paper shape: annotation cost grows with table size (0.01 → 0.39 s/query);
// Warper adds a roughly constant model-building term (~1 min single-thread)
// on top, so its utilization is the highest but still ~1% at 1 q/s.
#include "bench_common.h"

#include "ce/lm.h"
#include "ce/query_domain.h"
#include "core/warper.h"
#include "eval/cost_model.h"
#include "storage/annotator.h"
#include "util/rng.h"
#include "util/timer.h"
#include "workload/generator.h"

int main() {
  using namespace warper;
  bench::BenchInit();
  bench::BenchScale scale = bench::GetScale();

  util::PrintBanner(std::cout, "Table 6: cost overhead of adaptation");

  struct Rate {
    const char* label;
    double qps;
    double period_s;
  };
  std::vector<Rate> rates = {{"10 min @ 10 q/s", 10.0, 600.0},
                             {"10 min @ 1 q/s", 1.0, 600.0},
                             {"30 min @ 0.2 q/s", 0.2, 1800.0}};

  util::TablePrinter table({"Dataset", "Anno s/query", "Model build s",
                            "Method", rates[0].label, rates[1].label,
                            rates[2].label});

  for (const std::string dataset : {"PRSA", "Poker", "Higgs"}) {
    storage::Table t = bench::DatasetFactory(dataset, scale.table_rows)(17);
    storage::Annotator annotator(&t);
    ce::SingleTableDomain domain(&annotator);
    util::Rng rng(17);

    // c_gt: measured single-thread annotation cost.
    std::vector<std::vector<double>> probe_features;
    for (const auto& p : workload::GenerateWorkload(
             t, {workload::GenMethod::kW1, workload::GenMethod::kW3}, 64,
             &rng)) {
      probe_features.push_back(domain.FeaturizePredicate(p));
    }
    double anno_s =
        eval::MeasureAnnotationSecondsPerQuery(domain, probe_features);

    // C: measured cost to build/update the Warper modules once (offline
    // pre-train + one GAN session + one model fine-tune).
    std::vector<ce::LabeledExample> train;
    {
      std::vector<storage::RangePredicate> preds = workload::GenerateWorkload(
          t, {workload::GenMethod::kW1}, scale.train_size, &rng);
      std::vector<int64_t> counts = annotator.BatchCount(preds);
      for (size_t i = 0; i < preds.size(); ++i) {
        train.push_back({domain.FeaturizePredicate(preds[i]), counts[i]});
      }
    }
    ce::LmMlp model(domain.FeatureDim(), ce::LmMlpConfig{}, 17);
    {
      nn::Matrix x;
      std::vector<double> y;
      ce::ExamplesToMatrix(train, &x, &y);
      model.Train(x, y);
    }
    core::WarperConfig config;
    if (Status st = config.Validate(); !st.ok()) {
      std::cerr << "bad config: " << st.ToString() << "\n";
      return 1;
    }
    util::WallTimer build_timer;
    core::Warper warper(&domain, &model, config);
    if (Status st = warper.Initialize(train); !st.ok()) {
      std::cerr << "Initialize failed: " << st.ToString() << "\n";
      return 1;
    }
    {
      core::Warper::Invocation invocation;
      std::vector<storage::RangePredicate> preds = workload::GenerateWorkload(
          t, {workload::GenMethod::kW3}, 48, &rng);
      std::vector<int64_t> counts = annotator.BatchCount(preds);
      for (size_t i = 0; i < preds.size(); ++i) {
        invocation.new_queries.push_back(
            {domain.FeaturizePredicate(preds[i]), counts[i]});
      }
      Result<core::Warper::InvocationResult> invoked =
          warper.Invoke(invocation);
      if (!invoked.ok()) {
        std::cerr << "Invoke failed: " << invoked.status().ToString() << "\n";
        return 1;
      }
    }
    double build_s = build_timer.Seconds();

    // Utilization rows per method. AUG/HEM only pay annotation for their
    // synthetic queries (n_g = 0.1 n_t) plus ~1 s of model update; Warper
    // adds the module-building constant.
    struct MethodCost {
      const char* name;
      double annotations_per_arrival;
      double constant_s;
    };
    std::vector<MethodCost> methods = {
        {"AUG", 0.1, 1.0},
        {"HEM", 0.1, 1.0},
        {"Warper", 0.1, build_s},
    };
    for (const MethodCost& m : methods) {
      std::vector<std::string> row = {
          dataset, util::FormatDouble(anno_s, 4),
          m.name == std::string("Warper") ? util::FormatDouble(build_s, 1)
                                          : "1.0",
          m.name};
      for (const Rate& rate : rates) {
        eval::CostInputs inputs;
        inputs.rate_qps = rate.qps;
        inputs.period_seconds = rate.period_s;
        inputs.annotation_seconds_per_query = anno_s;
        inputs.annotations_per_arrival = m.annotations_per_arrival;
        inputs.constant_seconds = m.constant_s;
        row.push_back(
            util::FormatDouble(100.0 * eval::AverageCpuUtilization(inputs), 3) +
            "%");
      }
      table.AddRow(row);
    }
  }

  table.Print(std::cout);
  std::cout << "\nPaper shape: Warper's avg CPU is the largest of the three "
               "but stays around or below ~1% at 1 q/s and ~0.5% at 0.2 q/s; "
               "annotation cost rises with table size.\n";
  return 0;
}
