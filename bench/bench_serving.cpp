// Serving-layer throughput and latency: micro-batched inference vs the
// unbatched fast path on the LM-mlp estimator, plus the cost of hot-swapping
// model snapshots under load. Emits BENCH_serving.json.
//
// The headline series is single-producer qps at batch_max ∈ {1, 8, 32}:
// batch_max = 1 is the inline per-query GEMV path, larger settings pipeline
// requests through the micro-batcher so the MLP forward pass runs as one
// GEMM over the whole batch (weights stream from memory once per batch
// instead of once per query). SIMD kernels are enabled, as a serving
// deployment would run them.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "ce/lm.h"
#include "nn/matrix.h"
#include "serve/batcher.h"
#include "serve/snapshot.h"
#include "util/rng.h"
#include "util/timer.h"
#include "workload/generator.h"

namespace warper::bench {
namespace {

// Wide trunk on purpose: serving-scale models are weight-traffic bound on
// the per-query path (each 512×512 layer streams 2 MB of weights per
// query), which is exactly what batching amortizes.
constexpr size_t kHiddenUnits = 512;

struct SeriesPoint {
  size_t batch_max = 0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

struct SwapStats {
  size_t publishes = 0;
  double max_publish_us = 0.0;
  double p99_estimate_us = 0.0;
  double max_estimate_us = 0.0;
};

std::vector<std::vector<double>> BenchFeatures(const storage::Table& table,
                                               const ce::SingleTableDomain& domain,
                                               size_t n, util::Rng* rng) {
  std::vector<storage::RangePredicate> preds = workload::GenerateWorkload(
      table, {workload::GenMethod::kW1}, n, rng);
  std::vector<std::vector<double>> features(n);
  for (size_t i = 0; i < n; ++i) {
    features[i] = domain.FeaturizePredicate(preds[i]);
  }
  return features;
}

serve::EstimateRequest Req(const std::vector<double>& features) {
  serve::EstimateRequest request;
  request.features = features;
  return request;
}

core::ServeConfig ServeConfigFor(size_t batch_max) {
  core::ServeConfig config;
  config.batch_max = batch_max;
  config.batch_timeout_us = 100;
  config.queue_capacity = 4096;
  return config;
}

// Single-producer throughput at one batch_max setting. batch_max == 1 runs
// the synchronous inline path; larger settings keep a pipeline of async
// requests in flight so the dispatcher always has a full batch to coalesce.
SeriesPoint RunSeries(const serve::SnapshotStore& store, size_t batch_max,
                      const std::vector<std::vector<double>>& features,
                      size_t requests) {
  serve::MicroBatcher batcher(ServeConfigFor(batch_max), &store,
                              features[0].size());
  if (batch_max > 1) WARPER_CHECK(batcher.Start().ok());

  // Warmup.
  for (size_t i = 0; i < 512; ++i) {
    batcher.Estimate(Req(features[i % features.size()])).ValueOrDie();
  }

  SeriesPoint point;
  point.batch_max = batch_max;

  // Throughput: pipelined (async) for the batched settings, synchronous for
  // the inline path (its pipeline depth is inherently 1).
  util::WallTimer timer;
  if (batch_max == 1) {
    for (size_t i = 0; i < requests; ++i) {
      batcher.Estimate(Req(features[i % features.size()])).ValueOrDie();
    }
  } else {
    const size_t window = 4 * batch_max;
    std::vector<std::future<Result<serve::EstimateResponse>>> inflight;
    inflight.reserve(window);
    for (size_t i = 0; i < requests; ++i) {
      inflight.push_back(
          batcher.EstimateAsync(Req(features[i % features.size()])));
      if (inflight.size() == window) {
        for (auto& f : inflight) f.get().ValueOrDie();
        inflight.clear();
      }
    }
    for (auto& f : inflight) f.get().ValueOrDie();
  }
  point.qps = static_cast<double>(requests) / timer.Seconds();

  // Closed-loop latency: one synchronous request at a time, so the batched
  // settings pay their coalescing wait honestly.
  const size_t latency_probes = std::min<size_t>(requests / 4, 2000);
  std::vector<double> latencies_us;
  latencies_us.reserve(latency_probes);
  for (size_t i = 0; i < latency_probes; ++i) {
    util::WallTimer one;
    batcher.Estimate(Req(features[i % features.size()])).ValueOrDie();
    latencies_us.push_back(one.Seconds() * 1e6);
  }
  point.p50_us = LatencyQuantile(latencies_us, 0.50);
  point.p99_us = LatencyQuantile(latencies_us, 0.99);
  batcher.Stop();
  return point;
}

// Estimate latency while a writer hot-swaps snapshots as fast as it can:
// the reader's tail shows what a swap costs in-band (the design goal is
// "nothing": readers never take a lock the publisher holds).
SwapStats RunSwapStorm(serve::SnapshotStore* store,
                       const ce::CardinalityEstimator& model,
                       const std::vector<std::vector<double>>& features,
                       size_t swaps) {
  serve::MicroBatcher batcher(ServeConfigFor(1), store, features[0].size());
  SwapStats stats;
  stats.publishes = swaps;
  std::vector<double> estimate_us;
  std::vector<double> publish_us(swaps);

  std::atomic<bool> go{false};
  std::thread writer([&] {
    while (!go.load()) std::this_thread::yield();
    uint64_t version = store->CurrentVersion();
    for (size_t k = 0; k < swaps; ++k) {
      std::shared_ptr<const ce::CardinalityEstimator> clone = model.Clone();
      util::WallTimer t;
      store->Publish(std::make_shared<const serve::ModelSnapshot>(
          ++version, std::move(clone), store->Current()->modules(), 1.0));
      publish_us[k] = t.Seconds() * 1e6;
      std::this_thread::yield();
    }
  });
  go.store(true);
  size_t i = 0;
  while (writer.joinable() && store->CurrentVersion() < swaps) {
    util::WallTimer one;
    batcher.Estimate(Req(features[i++ % features.size()])).ValueOrDie();
    estimate_us.push_back(one.Seconds() * 1e6);
  }
  writer.join();

  stats.max_publish_us =
      *std::max_element(publish_us.begin(), publish_us.end());
  stats.max_estimate_us =
      estimate_us.empty()
          ? 0.0
          : *std::max_element(estimate_us.begin(), estimate_us.end());
  stats.p99_estimate_us = LatencyQuantile(estimate_us, 0.99);
  return stats;
}

}  // namespace
}  // namespace warper::bench

int main() {
  using namespace warper;
  using namespace warper::bench;
  BenchInit();

  // Serving runs the SIMD kernels: determinism across kernel choices is a
  // test concern, not a deployment one.
  util::ParallelConfig parallel;
  parallel.threads = 1;
  parallel.deterministic = false;
  nn::SetMatrixParallelism(parallel);

  const bool fast = FastMode();
  const size_t table_rows = fast ? 8000 : 20000;
  const size_t train_size = fast ? 300 : 600;
  const size_t requests = fast ? 4000 : 20000;
  const size_t swaps = fast ? 100 : 400;

  storage::Table table = storage::MakePrsa(table_rows, /*seed=*/17);
  storage::Annotator annotator(&table);
  ce::SingleTableDomain domain(&annotator);
  util::Rng rng(17);

  // Train the served model (accuracy is incidental here; the forward-pass
  // shape is what the bench exercises).
  std::vector<storage::RangePredicate> train_preds =
      workload::GenerateWorkload(table, {workload::GenMethod::kW1},
                                 train_size, &rng);
  std::vector<int64_t> train_counts = annotator.BatchCount(train_preds);
  nn::Matrix x(train_size, domain.FeatureDim());
  std::vector<double> y(train_size);
  for (size_t i = 0; i < train_size; ++i) {
    x.SetRow(i, domain.FeaturizePredicate(train_preds[i]));
    y[i] = ce::CardToTarget(train_counts[i]);
  }
  ce::LmMlpConfig model_config;
  model_config.hidden = {kHiddenUnits, kHiddenUnits};
  model_config.train_epochs = fast ? 4 : 10;
  ce::LmMlp model(domain.FeatureDim(), model_config, /*seed=*/17);
  model.Train(x, y);

  serve::SnapshotStore store;
  {
    util::Rng mlp_rng(7);
    nn::MlpConfig tiny;
    tiny.layer_sizes = {2, 2};
    nn::Mlp placeholder(tiny, &mlp_rng);
    store.Publish(std::make_shared<const serve::ModelSnapshot>(
        1, model.Clone(),
        core::Warper::ModuleState{ce::MlpSnapshot(placeholder),
                                  ce::MlpSnapshot(placeholder),
                                  ce::MlpSnapshot(placeholder)},
        1.0));
  }

  std::vector<std::vector<double>> features =
      BenchFeatures(table, domain, 1024, &rng);

  std::vector<SeriesPoint> series;
  for (size_t batch_max : {size_t{1}, size_t{8}, size_t{32}}) {
    series.push_back(RunSeries(store, batch_max, features, requests));
    std::cerr << "batch_max=" << series.back().batch_max
              << " qps=" << static_cast<uint64_t>(series.back().qps)
              << " p50=" << series.back().p50_us << "us"
              << " p99=" << series.back().p99_us << "us\n";
  }
  double speedup = series.back().qps / series.front().qps;

  SwapStats swap = RunSwapStorm(&store, model, features, swaps);

  JsonWriter w;
  w.BeginObject();
  w.Key("bench").Value("serving");
  w.Key("fast").Value(fast);
  w.Key("kernel").Value(nn::ActiveKernelName());
  w.Key("model").Value("LM-mlp");
  w.Key("hidden_units").Value(static_cast<uint64_t>(kHiddenUnits));
  w.Key("requests_per_series").Value(static_cast<uint64_t>(requests));
  w.Key("series").BeginArray();
  for (const SeriesPoint& p : series) {
    w.BeginObject();
    w.Key("batch_max").Value(static_cast<uint64_t>(p.batch_max));
    w.Key("qps").Value(p.qps, 1);
    w.Key("p50_us").Value(p.p50_us, 1);
    w.Key("p99_us").Value(p.p99_us, 1);
    w.EndObject();
  }
  w.EndArray();
  w.Key("speedup_qps_batch32_vs_1").Value(speedup, 2);
  w.Key("swap").BeginObject();
  w.Key("publishes").Value(static_cast<uint64_t>(swap.publishes));
  w.Key("max_publish_us").Value(swap.max_publish_us, 1);
  w.Key("estimate_p99_us_during_swaps").Value(swap.p99_estimate_us, 1);
  w.Key("estimate_max_us_during_swaps").Value(swap.max_estimate_us, 1);
  w.EndObject();
  AttachMetricsSnapshot(&w);
  w.EndObject();
  EmitJson(w, "BENCH_serving.json");
  return 0;
}
