// Figure 1 (motivation): the select-project-join query over TPC-H
// Lineitem ⨝ Orders with a drifting predicate workload on L. Shows (left)
// GMQ of the LM estimator before / during / after adapting to the drift and
// (right) the simulated query latency under the plans an optimizer picks
// with those estimates.
//
// Paper shape: adapting to the workload drift cuts CE error by up to ~3×
// (GMQ ~19 unadapted → ~7 adapted in the paper's setting) and improves query
// latency by tens of percent (31% there).
#include "bench_common.h"

#include "baselines/ft.h"
#include "ce/lm.h"
#include "ce/metrics.h"
#include "ce/query_domain.h"
#include "core/warper.h"
#include "qo/executor.h"
#include "storage/annotator.h"
#include "util/rng.h"
#include "workload/generator.h"

int main() {
  using namespace warper;
  bench::BenchInit();
  bool fast = bench::FastMode();

  util::PrintBanner(std::cout,
                    "Figure 1: motivation — CE drift on TPC-H L join O");

  size_t num_orders = fast ? 4000 : 20000;
  storage::TpchTables tables = storage::MakeTpch(num_orders, /*seed=*/11);
  storage::Annotator annotator(&tables.lineitem);
  ce::SingleTableDomain domain(&annotator);
  util::Rng rng(11);

  // The drift combines a distribution change (w1 → w3) with a template
  // change (single-column → 2-3-column conjunctions), like Figure 1's X→X'.
  workload::GeneratorOptions train_opts;
  train_opts.min_constrained_cols = train_opts.max_constrained_cols = 1;
  workload::GeneratorOptions drifted_opts;
  drifted_opts.min_constrained_cols = 2;
  drifted_opts.max_constrained_cols = 3;

  auto make_examples = [&](workload::GenMethod method, size_t n,
                           const workload::GeneratorOptions& opts) {
    std::vector<storage::RangePredicate> preds =
        workload::GenerateWorkload(tables.lineitem, {method}, n, &rng, opts);
    std::vector<int64_t> counts = annotator.BatchCount(preds);
    std::vector<ce::LabeledExample> out(n);
    for (size_t i = 0; i < n; ++i) {
      out[i] = {domain.FeaturizePredicate(preds[i]), counts[i]};
    }
    return out;
  };

  // Train on w1 (the blue X distribution), drift to w3 (the orange X').
  // The data-centred w3 predicates select larger row sets than the unadapted
  // model (trained on uniform w1 ranges) predicts, so it underestimates them — exactly the
  // under-grant → buffer-spill regression the paper attributes Figure 1's
  // latency gap to.
  size_t train_n = fast ? 400 : 1000;
  std::vector<ce::LabeledExample> train =
      make_examples(workload::GenMethod::kW1, train_n, train_opts);
  ce::LmMlp model(domain.FeatureDim(), ce::LmMlpConfig{}, 11);
  {
    nn::Matrix x;
    std::vector<double> y;
    ce::ExamplesToMatrix(train, &x, &y);
    model.Train(x, y);
  }

  // Test queries from the drifted workload; also used to drive the QO.
  std::vector<storage::RangePredicate> test_preds =
      workload::GenerateWorkload(tables.lineitem, {workload::GenMethod::kW3},
                                 fast ? 40 : 100, &rng, drifted_opts);
  std::vector<ce::LabeledExample> test;
  {
    std::vector<int64_t> counts = annotator.BatchCount(test_preds);
    for (size_t i = 0; i < test_preds.size(); ++i) {
      test.push_back({domain.FeaturizePredicate(test_preds[i]), counts[i]});
    }
  }

  qo::Optimizer optimizer;
  qo::Executor executor(&tables);
  auto avg_latency = [&]() {
    double total = 0.0;
    for (size_t i = 0; i < test_preds.size(); ++i) {
      qo::SpjQuery query;
      query.lineitem_pred = test_preds[i];
      query.orders_pred = storage::RangePredicate::FullRange(tables.orders);
      double est_l = model.EstimateCardinality(test[i].features);
      double est_o = static_cast<double>(tables.orders.NumRows());
      total += executor
                   .Run(query, optimizer, est_l, est_o,
                        qo::Scenario::kBufferSpill)
                   .latency_ms;
    }
    return total / static_cast<double>(test_preds.size());
  };

  std::cout << "Training-workload (w1) GMQ: "
            << util::FormatDouble(ce::ModelGmq(model, train), 2) << "\n";
  double gmq_unadapted = ce::ModelGmq(model, test);
  double lat_unadapted = avg_latency();
  std::cout << "After drift to w3, unadapted:  GMQ="
            << util::FormatDouble(gmq_unadapted, 2)
            << "  avg latency=" << util::FormatDouble(lat_unadapted, 1)
            << " ms\n";

  // Adapt with Warper over several periods of arriving w2 queries.
  core::WarperConfig config;
  if (fast) {
    config.n_i = 40;
    config.n_p = 300;
  }
  if (Status st = config.Validate(); !st.ok()) {
    std::cerr << "bad config: " << st.ToString() << "\n";
    return 1;
  }
  core::Warper warper(&domain, &model, config);
  if (Status st = warper.Initialize(train); !st.ok()) {
    std::cerr << "Initialize failed: " << st.ToString() << "\n";
    return 1;
  }
  size_t steps = fast ? 3 : 5;
  for (size_t step = 1; step <= steps; ++step) {
    core::Warper::Invocation invocation;
    invocation.new_queries =
        make_examples(workload::GenMethod::kW3, fast ? 40 : 72, drifted_opts);
    Result<core::Warper::InvocationResult> invoked = warper.Invoke(invocation);
    if (!invoked.ok()) {
      std::cerr << "Invoke failed: " << invoked.status().ToString() << "\n";
      return 1;
    }
    const core::Warper::InvocationResult& r = invoked.ValueOrDie();
    std::cout << "  adaptation step " << step << " [mode=" << r.mode.ToString()
              << " dm=" << util::FormatDouble(r.delta_m, 2)
              << " djs=" << util::FormatDouble(r.delta_js, 2)
              << "]: GMQ=" << util::FormatDouble(ce::ModelGmq(model, test), 2)
              << "  avg latency=" << util::FormatDouble(avg_latency(), 1)
              << " ms\n";
  }

  double gmq_adapted = ce::ModelGmq(model, test);
  double lat_adapted = avg_latency();
  std::cout << "\nCE error reduced "
            << util::FormatDouble(gmq_unadapted / gmq_adapted, 1)
            << "x (paper: up to ~3x); latency improved "
            << util::FormatDouble(
                   100.0 * (lat_unadapted - lat_adapted) / lat_unadapted, 0)
            << "% (paper: 31%).\n";
  return 0;
}
