// Figure 6 + Table 7a: workload drift c2 (w12/345) with LM-mlp on PRSA,
// Poker and Higgs. Prints per-method adaptation curves (the figure's panels,
// with quartile bands) and the relative-speedup table Δ.5 / Δ.8 / Δ1.
//
// Paper shape: Warper adapts fastest; AUG/HEM beat MIX/FT; speedups of
// several × at Δ.5 that shrink toward Δ1.
#include "bench_common.h"

int main() {
  using namespace warper;
  bench::BenchInit();
  bench::BenchScale scale = bench::GetScale();

  util::PrintBanner(std::cout,
                    "Figure 6 / Table 7a: workload drift c2, LM-mlp, w12/345");

  util::TablePrinter table({"Dataset", "Wkld", "Model", "dm", "djs", "D.5",
                            "D.8", "D1"});
  std::vector<std::string> datasets = {"PRSA", "Poker", "Higgs"};
  for (const std::string& dataset : datasets) {
    eval::DriftExperimentResult result = bench::RunTableDrift(
        dataset, scale, "w12/345", drift::DriftSpec::C2(),
        {eval::Method::kFt, eval::Method::kMix, eval::Method::kAug,
         eval::Method::kHem, eval::Method::kWarper},
        /*seed=*/61);
    bench::PrintCurves(std::cout, dataset + " c2 w12/345 LM-mlp", result);
    for (const eval::MethodResult& m : result.methods) {
      if (m.name == "Warper") {
        table.AddRow(bench::DeltaRow(dataset, "w12/345", "LM-mlp", result, m));
      }
    }
  }

  std::cout << "\nTable 7a (Warper speedups vs FT; paper: PRSA 7.4/4.8/3.1, "
               "Poker 7.1/7.3/7.7, Higgs 3.8/3.7/3.5):\n";
  table.Print(std::cout);
  return 0;
}
