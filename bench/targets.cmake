# Bench binaries land directly in ${CMAKE_BINARY_DIR}/bench with no CMake
# scaffolding alongside, so `for b in build/bench/*; do $b; done` runs
# exactly the benchmark suite.
function(warper_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE
    warper_eval warper_qo warper_baselines warper_serve warper_core warper_ce
    warper_drift warper_workload warper_storage warper_ml warper_nn warper_util)
  target_include_directories(${name} PRIVATE ${CMAKE_SOURCE_DIR}/bench)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

warper_bench(fig01_motivation)
warper_bench(fig05_workload_viz)
warper_bench(fig06_workload_drift)
warper_bench(fig07_adaptation_viz)
warper_bench(fig08_adaptation_grid)
warper_bench(fig09_endtoend)
warper_bench(fig10_hyperparams)
warper_bench(fig11_ngen_sweep)
warper_bench(tab06_costs)
warper_bench(tab07b_models)
warper_bench(tab07c_drifts)
warper_bench(tab07d_join_ce)
warper_bench(tab08_workload_pairs)
warper_bench(tab10_ablation)
warper_bench(bench_annotate)
warper_bench(bench_parallel)
warper_bench(bench_kernels)
warper_bench(bench_serving)
warper_bench(bench_fleet)
warper_bench(bench_targeted)
warper_bench(bench_driftgrid)
