// Figure 11 + Table 11: trading compute for adaptation speedup — vary the
// number of generated queries n_g as a multiple of the arrivals n_t
// (0.1×, 0.3×, 1×, 3×) and report speedups plus the annotation / CPU cost.
//
// Paper shape: more generated queries do NOT necessarily adapt faster, but
// they do cost proportionally more annotation CPU.
#include "bench_common.h"

#include "eval/cost_model.h"
#include "storage/annotator.h"
#include "util/rng.h"
#include "workload/generator.h"

int main() {
  using namespace warper;
  bench::BenchInit();
  bench::BenchScale scale = bench::GetScale();

  util::PrintBanner(std::cout,
                    "Figure 11 / Table 11: n_g sweep (compute vs speedup)");

  std::vector<double> multiples = {0.1, 0.3, 1.0, 3.0};

  for (const std::string dataset : {"PRSA", "Poker"}) {
    util::TablePrinter table({"n_g", "D.5", "D.8", "D1", "Annotated/step",
                              "Anno s (period)", "CPU %"});

    // Measured annotation cost for this dataset.
    storage::Table t = bench::DatasetFactory(dataset, scale.table_rows)(111);
    storage::Annotator annotator(&t);
    ce::SingleTableDomain domain(&annotator);
    util::Rng rng(111);
    std::vector<std::vector<double>> probe;
    for (const auto& p : workload::GenerateWorkload(
             t, {workload::GenMethod::kW1}, 64, &rng)) {
      probe.push_back(domain.FeaturizePredicate(p));
    }
    double anno_s = eval::MeasureAnnotationSecondsPerQuery(domain, probe);

    for (double multiple : multiples) {
      eval::SingleTableDriftSpec spec;
      spec.table_factory = bench::DatasetFactory(dataset, scale.table_rows);
      spec.workload = workload::WorkloadSpec::Parse("w12/345").ValueOrDie();
      spec.model_factory = eval::LmMlpFactory();
      spec.methods = {eval::Method::kFt, eval::Method::kWarper};
      spec.config = bench::DefaultConfig(scale, /*seed=*/105);
      spec.config.gen_opts = bench::GenOptsFor(dataset);
      spec.config.warper.gen_fraction = multiple;

      eval::DriftExperimentResult result = eval::RunSingleTableDrift(spec);
      const eval::MethodResult& w = result.methods[1];
      double annotated_per_step =
          w.annotations / static_cast<double>(scale.steps);

      // 30-min period at 1 query / 5 s, as in the paper's Table 11.
      eval::CostInputs inputs;
      inputs.rate_qps = 0.2;
      inputs.period_seconds = 1800.0;
      inputs.annotation_seconds_per_query = anno_s;
      inputs.annotations_per_arrival =
          w.annotations /
          static_cast<double>(scale.steps * scale.queries_per_step);
      inputs.constant_seconds = w.adapt_seconds;
      double cpu = eval::AverageCpuUtilization(inputs);

      table.AddRow({util::FormatDouble(multiple, 1) + "x",
                    util::FormatDouble(w.deltas.d50, 1),
                    util::FormatDouble(w.deltas.d80, 1),
                    util::FormatDouble(w.deltas.d100, 1),
                    util::FormatDouble(annotated_per_step, 0),
                    util::FormatDouble(w.annotations * anno_s, 2),
                    util::FormatDouble(100.0 * cpu, 2) + "%"});
    }
    std::cout << "\n" << dataset << " (anno cost "
              << util::FormatDouble(anno_s, 4) << " s/query):\n";
    table.Print(std::cout);
  }
  std::cout << "\nPaper shape: speedups plateau (or dip) as n_g grows while "
               "annotation CPU rises roughly linearly with n_g.\n";
  return 0;
}
