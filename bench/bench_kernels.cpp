// Dense-kernel throughput bench: scalar vs SIMD vs SIMD+threads, in GFLOP/s,
// at the adaptation loop's real shapes (batch×in trunk, 128×128 hidden,
// 128×|z| head). Emits BENCH_kernels.json (path overridable as argv[1]) and
// mirrors it on stdout, so the repo accumulates a perf trajectory across
// PRs. See README "Benchmarks & the perf trajectory" for the field glossary.
//
// `--check` turns the bench into a CI smoke gate: on AVX2 hardware it exits
// non-zero when the SIMD GEMM fails to beat the scalar GEMM at 128×128 — a
// regression in either the kernels or the dispatcher.
#include "bench_common.h"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "core/config.h"
#include "nn/kernels.h"
#include "nn/matrix.h"
#include "util/cpu_features.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace warper;

namespace {

nn::Matrix RandomMatrix(size_t rows, size_t cols, util::Rng* rng) {
  nn::Matrix m(rows, cols);
  for (double& v : m.data()) v = rng->Uniform() * 2.0 - 1.0;
  return m;
}

// Keeps results observable so the GEMM can't be optimized away.
double g_sink = 0.0;

struct GemmShape {
  size_t m, k, n;
  const char* why;
};

// The MLP's real shapes (§3.5: FC-128 trunks, |z| = 16, batch 64).
const GemmShape kGemmShapes[] = {
    {64, 130, 128, "batch x input trunk layer"},
    {128, 128, 128, "hidden FC-128 layer"},
    {128, 128, 16, "embedding head (|z| = 16)"},
};

void ApplyMode(util::SimdMode simd, int threads) {
  util::ParallelConfig config;
  config.threads = threads;
  config.deterministic = false;
  config.simd = simd;
  core::ApplyParallelConfig(config);
}

// Median seconds per single GEMM, with enough inner iterations per sample
// that each sample runs a few tens of milliseconds.
double TimeGemmSeconds(const nn::Matrix& a, const nn::Matrix& b, int repeats) {
  double flop = 2.0 * static_cast<double>(a.rows()) *
                static_cast<double>(a.cols()) *
                static_cast<double>(b.cols());
  size_t iters = std::max<size_t>(1, static_cast<size_t>(1e8 / flop));
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(repeats));
  for (int r = 0; r < repeats; ++r) {
    util::WallTimer timer;
    for (size_t i = 0; i < iters; ++i) {
      nn::Matrix out = a.MatMul(b);
      g_sink += out.data()[0];
    }
    samples.push_back(timer.Seconds() / static_cast<double>(iters));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

double Gflops(const GemmShape& s, double seconds) {
  double flop = 2.0 * static_cast<double>(s.m) * static_cast<double>(s.k) *
                static_cast<double>(s.n);
  return seconds > 0.0 ? flop / seconds / 1e9 : 0.0;
}

struct GemmResult {
  GemmShape shape;
  double scalar_gflops = 0.0;
  double simd_gflops = 0.0;
  double simd_threads_gflops = 0.0;
};

// Fused vs unfused bias+activation epilogue at the trunk shape.
struct EpilogueResult {
  double unfused_ms = 0.0;
  double fused_ms = 0.0;
};

EpilogueResult BenchEpilogue(int repeats, util::SimdMode simd) {
  ApplyMode(simd, 1);
  util::Rng rng(41);
  nn::Matrix x = RandomMatrix(64, 130, &rng);
  nn::Matrix w = RandomMatrix(130, 128, &rng);
  std::vector<double> bias(128);
  for (double& v : bias) v = rng.Uniform() - 0.5;

  auto time_ms = [&](auto&& fn) {
    std::vector<double> samples;
    for (int r = 0; r < repeats; ++r) {
      util::WallTimer timer;
      for (int i = 0; i < 50; ++i) fn();
      samples.push_back(timer.Seconds() * 1000.0 / 50.0);
    }
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
  };

  EpilogueResult result;
  result.unfused_ms = time_ms([&] {
    nn::Matrix y = x.MatMul(w);
    y.AddRowBroadcast(bias);
    for (double& v : y.data()) v = v > 0.0 ? v : nn::kLeakyReluSlope * v;
    g_sink += y.data()[0];
  });
  result.fused_ms = time_ms([&] {
    nn::Matrix y = x.MatMulBiasAct(w, bias, nn::Activation::kLeakyRelu);
    g_sink += y.data()[0];
  });
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchInit();
  bool check = false;
  std::string out_path = "BENCH_kernels.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      out_path = argv[i];
    }
  }
  int repeats = bench::FastMode() ? 3 : 7;

  bool avx2 = util::BestSupportedSimdLevel() == util::SimdLevel::kAvx2 &&
              nn::internal::Avx2KernelsCompiled();
  util::SimdMode simd_mode =
      avx2 ? util::SimdMode::kAvx2 : util::SimdMode::kScalar;

  std::vector<GemmResult> results;
  for (const GemmShape& s : kGemmShapes) {
    util::Rng rng(17);
    nn::Matrix a = RandomMatrix(s.m, s.k, &rng);
    nn::Matrix b = RandomMatrix(s.k, s.n, &rng);
    GemmResult r;
    r.shape = s;
    ApplyMode(util::SimdMode::kScalar, 1);
    r.scalar_gflops = Gflops(s, TimeGemmSeconds(a, b, repeats));
    ApplyMode(simd_mode, 1);
    r.simd_gflops = Gflops(s, TimeGemmSeconds(a, b, repeats));
    ApplyMode(simd_mode, 0);
    r.simd_threads_gflops = Gflops(s, TimeGemmSeconds(a, b, repeats));
    results.push_back(r);
  }

  EpilogueResult epilogue = BenchEpilogue(repeats, simd_mode);

  const util::CpuFeatures& cpu = util::GetCpuFeatures();
  util::ParallelConfig hw;
  bench::JsonWriter json;
  json.BeginObject();
  json.Key("hardware_threads").Value(hw.ResolvedThreads());
  json.Key("cpu").BeginObject();
  json.Key("avx").Value(cpu.avx);
  json.Key("fma").Value(cpu.fma);
  json.Key("avx2").Value(cpu.avx2);
  json.Key("avx512f").Value(cpu.avx512f);
  json.EndObject();
  json.Key("simd_kernels").Value(util::SimdModeName(simd_mode));
  json.Key("gemm_gflops").BeginArray();
  for (const GemmResult& r : results) {
    double speedup =
        r.scalar_gflops > 0.0 ? r.simd_gflops / r.scalar_gflops : 0.0;
    std::ostringstream shape;
    shape << r.shape.m << "x" << r.shape.k << "*" << r.shape.k << "x"
          << r.shape.n;
    json.BeginObject();
    json.Key("shape").Value(shape.str());
    json.Key("role").Value(r.shape.why);
    json.Key("scalar").Value(r.scalar_gflops, 2);
    json.Key("simd").Value(r.simd_gflops, 2);
    json.Key("simd_threads").Value(r.simd_threads_gflops, 2);
    json.Key("simd_speedup").Value(speedup, 2);
    json.EndObject();
  }
  json.EndArray();
  json.Key("fused_epilogue").BeginObject();
  json.Key("shape").Value("64x130*130x128 leaky_relu");
  json.Key("unfused_ms").Value(epilogue.unfused_ms, 4);
  json.Key("fused_ms").Value(epilogue.fused_ms, 4);
  json.Key("speedup")
      .Value(epilogue.fused_ms > 0.0 ? epilogue.unfused_ms / epilogue.fused_ms
                                     : 0.0,
             2);
  json.EndObject();
  bench::AttachMetricsSnapshot(&json);
  json.EndObject();
  bench::EmitJson(json, out_path);

  if (check && avx2) {
    // CI gate: SIMD must beat scalar on the hidden-layer GEMM.
    const GemmResult& hidden = results[1];
    if (hidden.simd_gflops <= hidden.scalar_gflops) {
      std::cerr << "CHECK FAILED: simd ("
                << util::FormatDouble(hidden.simd_gflops, 2)
                << " GFLOP/s) not faster than scalar ("
                << util::FormatDouble(hidden.scalar_gflops, 2)
                << " GFLOP/s) at 128x128\n";
      return 1;
    }
  }
  return 0;
}
