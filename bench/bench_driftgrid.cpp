// DriftLab grid: GMQ-vs-time adaptation surfaces over an intensity × cadence
// grid for each drift-scenario family (data, workload, correlated,
// oscillating). Every cell is one RunSingleTableDrift with Warper only —
// the surface shows how adaptation quality degrades as drifts get harder
// (intensity ↑) and faster (cadence ↓ relative to the adaptation period).
// The oscillating family additionally tracks π-escalation misfires: flips
// faster than the adaptation cadence make early-stop raise π repeatedly.
//
// Emits BENCH_driftgrid.json; tools/check_driftgrid.py gates CI against the
// committed baseline (tools/driftgrid_baseline.json).
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "drift/spec.h"
#include "util/metrics.h"

int main(int argc, char** argv) {
  using namespace warper;
  bench::BenchInit();
  std::string out_path = "BENCH_driftgrid.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") != 0) out_path = argv[i];
  }
  const bool fast = bench::FastMode();
  bench::BenchScale scale = bench::GetScale();
  scale.repeats = 1;  // the grid trades repeats for coverage
  // Cadence 4 must fit inside the run so ramps complete and oscillations
  // flip at least once.
  if (scale.steps < 4) scale.steps = 4;

  util::PrintBanner(std::cout,
                    "DriftLab grid: GMQ vs time over intensity x cadence");

  const std::vector<double> intensities = {0.25, 0.5, 1.0};
  const std::vector<size_t> cadences = {1, 2, 4};

  // One row per family: the spec-grammar suffix, the workload pairing and
  // the annotation budget divisor (0 = unlimited). Data-drifting families
  // run label-starved (the c1 regime); workload families carry labels so
  // the surface isolates the drift shape, not the labeling budget.
  struct Family {
    const char* name;
    const char* suffix;    // appended after "family@I/C"
    const char* workload;
    size_t budget_divisor;
  };
  const std::vector<Family> families = {
      {"data", "", "w1-5", 2},
      {"workload", "+labels", "w12/345", 0},
      {"corr", "+labels", "w12/345", 2},
      {"osc", "+labels", "w12/345", 0},
  };

  util::Counter* escalations =
      util::Metrics().GetCounter("warper.pi_escalations");

  bench::JsonWriter w;
  w.BeginObject();
  w.Key("bench").Value("driftgrid");
  w.Key("fast").Value(fast);
  w.Key("dataset").Value("PRSA");
  w.Key("steps").Value(static_cast<uint64_t>(scale.steps));
  w.Key("queries_per_step").Value(static_cast<uint64_t>(scale.queries_per_step));
  w.Key("families").BeginArray();

  for (const Family& family : families) {
    w.BeginObject();
    w.Key("family").Value(family.name);
    w.Key("workload").Value(family.workload);
    w.Key("cells").BeginArray();
    for (double intensity : intensities) {
      for (size_t cadence : cadences) {
        std::string drift_text = std::string(family.name) + "@" +
                                 util::FormatDouble(intensity, 2) + "/" +
                                 std::to_string(cadence) + family.suffix;
        drift::DriftSpec drift_spec =
            drift::DriftSpec::Parse(drift_text).ValueOrDie();
        size_t budget = family.budget_divisor == 0
                            ? std::numeric_limits<size_t>::max()
                            : scale.queries_per_step / family.budget_divisor;

        uint64_t escalations_before = escalations->Value();
        eval::DriftExperimentResult result = bench::RunTableDrift(
            "PRSA", scale, family.workload, drift_spec,
            {eval::Method::kWarper}, /*seed=*/91, budget,
            /*compute_beta=*/false);
        uint64_t cell_escalations = escalations->Value() - escalations_before;
        const eval::MethodResult& warper = result.methods[0];

        std::cout << drift_text << ": gmq "
                  << util::FormatDouble(warper.median.gmq.front(), 2) << " -> "
                  << util::FormatDouble(warper.median.gmq.back(), 2) << " ("
                  << cell_escalations << " pi escalations)\n";

        w.BeginObject();
        w.Key("drift").Value(drift_spec.ToString());
        w.Key("intensity").Value(intensity, 2);
        w.Key("cadence").Value(static_cast<uint64_t>(cadence));
        w.Key("alpha").Value(result.alpha, 3);
        w.Key("delta_js").Value(result.delta_js, 3);
        w.Key("gmq_final").Value(warper.median.gmq.back(), 3);
        w.Key("annotated").Value(warper.annotations, 1);
        w.Key("pi_escalations").Value(cell_escalations);
        w.Key("gmq_curve").BeginArray();
        for (double g : warper.median.gmq) w.Value(g, 3);
        w.EndArray();
        w.EndObject();
      }
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  bench::AttachErrLogSnapshot(&w);
  bench::AttachMetricsSnapshot(&w);
  w.EndObject();
  bench::EmitJson(w, out_path);
  return 0;
}
