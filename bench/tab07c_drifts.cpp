// Table 7c: data drift c1 (sort + truncate half, workload unchanged w1-5)
// and label-starved workload drift c3 (w12/345, arrivals unlabeled,
// budgeted annotation) with LM-mlp on the three datasets.
//
// Paper shape: speedups come from the picker's annotation savings — smaller
// than the c2 gains but ≥1× everywhere.
#include "bench_common.h"

int main() {
  using namespace warper;
  bench::BenchInit();
  bench::BenchScale scale = bench::GetScale();

  util::PrintBanner(std::cout, "Table 7c: data drift c1 and label-starved c3");

  util::TablePrinter table({"Dataset", "Case", "Wkld", "dm", "djs", "D.5",
                            "D.8", "D1"});

  for (const std::string dataset : {"PRSA", "Poker", "Higgs"}) {
    // --- c1: data drift, workload unchanged. ---
    {
      eval::SingleTableDriftSpec spec;
      spec.table_factory = bench::DatasetFactory(dataset, scale.table_rows);
      spec.workload = workload::WorkloadSpec::Parse("w1-5").ValueOrDie();
      spec.model_factory = eval::LmMlpFactory();
      spec.methods = {eval::Method::kFt, eval::Method::kWarper};
      spec.config = bench::DefaultConfig(scale, /*seed=*/73);
      spec.config.gen_opts = bench::GenOptsFor(dataset);
      spec.config.drift = eval::DriftKind::kDataC1;
      spec.config.annotation_budget_per_step = scale.queries_per_step / 2;

      eval::DriftExperimentResult result = eval::RunSingleTableDrift(spec);
      std::vector<std::string> row =
          bench::DeltaRow(dataset, "w1-5", "LM-mlp", result,
                          result.methods[1]);
      row[2] = "c1";  // replace the model column with the drift case
      table.AddRow({row[0], "c1", "w1-5", row[3], row[4], row[5], row[6],
                    row[7]});
    }
    // --- c3: workload drift, labels lag. ---
    {
      eval::SingleTableDriftSpec spec;
      spec.table_factory = bench::DatasetFactory(dataset, scale.table_rows);
      spec.workload = workload::WorkloadSpec::Parse("w12/345").ValueOrDie();
      spec.model_factory = eval::LmMlpFactory();
      spec.methods = {eval::Method::kFt, eval::Method::kWarper};
      spec.config = bench::DefaultConfig(scale, /*seed=*/74);
      spec.config.gen_opts = bench::GenOptsFor(dataset);
      spec.config.drift = eval::DriftKind::kWorkloadC3;
      spec.config.annotation_budget_per_step = scale.queries_per_step / 3;

      eval::DriftExperimentResult result = eval::RunSingleTableDrift(spec);
      std::vector<std::string> row =
          bench::DeltaRow(dataset, "w12/345", "LM-mlp", result,
                          result.methods[1]);
      table.AddRow({row[0], "c3", "w12/345", row[3], row[4], row[5], row[6],
                    row[7]});
    }
  }
  table.Print(std::cout);
  std::cout << "\nPaper: c1 speedups 1.0-7.6x, c3 speedups 1.0-1.4x; all >= 1 "
               "(annotation savings from the stratified picker).\n";
  return 0;
}
