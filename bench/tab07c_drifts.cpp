// Table 7c: data drift c1 (sort + truncate half, workload unchanged w1-5)
// and label-starved workload drift c3 (w12/345, arrivals unlabeled,
// budgeted annotation) with LM-mlp on the three datasets.
//
// Paper shape: speedups come from the picker's annotation savings — smaller
// than the c2 gains but ≥1× everywhere.
#include "bench_common.h"

int main() {
  using namespace warper;
  bench::BenchInit();
  bench::BenchScale scale = bench::GetScale();

  util::PrintBanner(std::cout, "Table 7c: data drift c1 and label-starved c3");

  util::TablePrinter table({"Dataset", "Case", "Wkld", "dm", "djs", "D.5",
                            "D.8", "D1"});

  // Each case is one preset-drift run: (workload, preset, seed, budget).
  struct Case {
    const char* label;
    const char* workload;
    drift::DriftSpec drift;
    uint64_t seed;
    size_t budget_divisor;
  };
  const std::vector<Case> cases = {
      {"c1", "w1-5", drift::DriftSpec::C1(), 73, 2},
      {"c3", "w12/345", drift::DriftSpec::C3(), 74, 3},
  };

  for (const std::string dataset : {"PRSA", "Poker", "Higgs"}) {
    for (const Case& c : cases) {
      eval::DriftExperimentResult result = bench::RunTableDrift(
          dataset, scale, c.workload, c.drift,
          {eval::Method::kFt, eval::Method::kWarper}, c.seed,
          scale.queries_per_step / c.budget_divisor);
      std::vector<std::string> row =
          bench::DeltaRow(dataset, c.workload, "LM-mlp", result,
                          result.methods[1]);
      table.AddRow({row[0], c.label, c.workload, row[3], row[4], row[5],
                    row[6], row[7]});
    }
  }
  table.Print(std::cout);
  std::cout << "\nPaper: c1 speedups 1.0-7.6x, c3 speedups 1.0-1.4x; all >= 1 "
               "(annotation savings from the stratified picker).\n";
  return 0;
}
