// Figure 7: PCA visualization of adaptation on PRSA (c2 drift, w12/345) —
// where the training (blue), incoming (orange), generated (green) and
// picked (red) queries live as adaptation proceeds. The paper's qualitative
// claim: generated and picked queries follow the incoming distribution.
// Here we report, per adaptation step, the mean PCA-space distance of each
// query group's centroid to the incoming workload's centroid, plus density
// panels for the final step.
#include "bench_common.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "ce/lm.h"
#include "ce/query_domain.h"
#include "core/warper.h"
#include "ml/pca.h"
#include "storage/annotator.h"
#include "util/rng.h"
#include "util/stats.h"
#include "workload/generator.h"

int main() {
  using namespace warper;
  bench::BenchInit();
  bench::BenchScale scale = bench::GetScale();

  util::PrintBanner(std::cout,
                    "Figure 7: who lives where during adaptation (PRSA, c2)");

  storage::Table table = storage::MakePrsa(scale.table_rows, /*seed=*/7);
  storage::Annotator annotator(&table);
  ce::SingleTableDomain domain(&annotator);
  util::Rng rng(7);

  workload::WorkloadSpec spec =
      workload::WorkloadSpec::Parse("w12/345").ValueOrDie();

  auto make_examples = [&](const std::vector<workload::GenMethod>& mix,
                           size_t n) {
    std::vector<storage::RangePredicate> preds =
        workload::GenerateWorkload(table, mix, n, &rng);
    std::vector<int64_t> counts = annotator.BatchCount(preds);
    std::vector<ce::LabeledExample> out(n);
    for (size_t i = 0; i < n; ++i) {
      out[i] = {domain.FeaturizePredicate(preds[i]), counts[i]};
    }
    return out;
  };

  std::vector<ce::LabeledExample> train =
      make_examples(spec.train, scale.train_size);
  ce::LmMlp model(domain.FeatureDim(), ce::LmMlpConfig{}, 7);
  {
    nn::Matrix x;
    std::vector<double> y;
    ce::ExamplesToMatrix(train, &x, &y);
    model.Train(x, y);
  }

  core::WarperConfig config;
  config.gen_fraction = 0.25;  // generate a bit more so the panel is visible
  if (Status st = config.Validate(); !st.ok()) {
    std::cerr << "bad config: " << st.ToString() << "\n";
    return 1;
  }
  core::Warper warper(&domain, &model, config);
  if (Status st = warper.Initialize(train); !st.ok()) {
    std::cerr << "Initialize failed: " << st.ToString() << "\n";
    return 1;
  }

  // Fit the visualization PCA on the training workload features.
  nn::Matrix train_features(train.size(), domain.FeatureDim());
  for (size_t i = 0; i < train.size(); ++i) {
    train_features.SetRow(i, train[i].features);
  }
  ml::Pca pca;
  pca.Fit(train_features, 2);

  // For a set of queries, the fraction whose nearest real query (PCA space)
  // belongs to the incoming workload rather than the training workload.
  auto new_affinity = [&](const std::vector<std::vector<double>>& queries,
                          const std::vector<std::vector<double>>& new_rows,
                          const std::vector<std::vector<double>>& train_rows) {
    if (queries.empty()) return 0.0;
    auto nearest_dist = [&](const std::vector<double>& q,
                            const std::vector<std::vector<double>>& corpus) {
      double best = std::numeric_limits<double>::infinity();
      std::vector<double> pq = pca.TransformRow(q);
      for (const auto& row : corpus) {
        std::vector<double> pr = pca.TransformRow(row);
        double dx = pq[0] - pr[0], dy = pq[1] - pr[1];
        best = std::min(best, dx * dx + dy * dy);
      }
      return best;
    };
    int closer_to_new = 0;
    for (const auto& q : queries) {
      if (nearest_dist(q, new_rows) <= nearest_dist(q, train_rows)) {
        ++closer_to_new;
      }
    }
    return static_cast<double>(closer_to_new) /
           static_cast<double>(queries.size());
  };

  util::TablePrinter table_out(
      {"step", "gen near new", "new near new (ref)", "#gen"});
  for (size_t step = 1; step <= scale.steps; ++step) {
    core::Warper::Invocation invocation;
    invocation.new_queries =
        make_examples(spec.drifted, scale.queries_per_step);
    Result<core::Warper::InvocationResult> invoked = warper.Invoke(invocation);
    if (!invoked.ok()) {
      std::cerr << "Invoke failed: " << invoked.status().ToString() << "\n";
      return 1;
    }

    std::vector<std::vector<double>> new_rows, gen_rows, train_rows;
    const core::QueryPool& pool = std::as_const(warper).pool();
    for (size_t i = 0; i < pool.Size(); ++i) {
      const core::PoolRecord& r = pool.record(i);
      if (r.label == core::Source::kNew) new_rows.push_back(r.features);
      if (r.label == core::Source::kGen) gen_rows.push_back(r.features);
      if (r.label == core::Source::kTrain) train_rows.push_back(r.features);
    }
    // Reference: how "new-like" a fresh sample of actual incoming queries
    // measures under the same statistic (leave-one-out is overkill here).
    std::vector<std::vector<double>> reference;
    for (const auto& q :
         make_examples(spec.drifted, std::min<size_t>(32, new_rows.size()))) {
      reference.push_back(q.features);
    }
    table_out.AddRow(
        {std::to_string(step),
         gen_rows.empty()
             ? "-"
             : util::FormatDouble(
                   100.0 * new_affinity(gen_rows, new_rows, train_rows), 0) +
                   "%",
         util::FormatDouble(
             100.0 * new_affinity(reference, new_rows, train_rows), 0) + "%",
         std::to_string(gen_rows.size())});
  }

  std::cout << "Fraction of queries whose nearest (PCA-space) real query is "
               "from the incoming workload — generated queries should match "
               "the incoming-workload reference, not the training side:\n";
  table_out.Print(std::cout);
  return 0;
}
