// Multi-tenant fleet serving: aggregate qps and per-tenant tail latency as
// the tenant count grows with the thread budget held fixed. Emits
// BENCH_fleet.json.
//
// The headline series is the qps-vs-tenant-count saturation curve at
// N ∈ {1, 2, 4, 8, 16, 32}: every point serves through one ServingFleet
// (shared dispatch pool + ONE shared adaptation executor), so the thread
// count stays O(cores) while the tenant count grows 32×. The curve should
// track N × single-tenant qps (within ~15%) until the cores are exhausted,
// then go flat — tenants add isolation, not threads. A final section runs
// an adaptation pass for every tenant UNDER the serving load and reports
// the serving tail during the resulting snapshot swaps.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "ce/lm.h"
#include "core/warper.h"
#include "nn/matrix.h"
#include "serve/fleet.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "workload/generator.h"

namespace warper::bench {
namespace {

// Modest trunk: the bench pushes ≥1M predicates through the inline GEMV
// path in full mode, so the per-query cost must stay in the tens of
// microseconds. The fleet mechanics under test (routing, admission, shared
// executor, epoch) are model-size independent.
constexpr size_t kHiddenUnits = 64;
constexpr size_t kMaxTenants = 32;

struct CurvePoint {
  size_t tenants = 0;
  double qps = 0.0;
  double per_tenant_qps = 0.0;
  double worst_tenant_p99_us = 0.0;
  double median_tenant_p99_us = 0.0;
};

serve::EstimateRequest Req(uint64_t tenant_id,
                           const std::vector<double>& features) {
  serve::EstimateRequest request;
  request.tenant_id = tenant_id;
  request.features = features;
  return request;
}

core::ServeConfig FleetConfig() {
  core::ServeConfig config;
  config.batch_max = 1;  // inline fast path: the per-tenant GEMV baseline
  config.tenant_queue_depth = 256;
  config.adapt_threads = 2;
  return config;
}

// One curve point: `producers` closed-loop threads round-robin their share
// of the first `tenants` fleet tenants, then per-tenant latency probes.
CurvePoint RunPoint(serve::ServingFleet* fleet, size_t tenants,
                    size_t producers, size_t requests, size_t latency_probes,
                    const std::vector<std::vector<double>>& features) {
  CurvePoint point;
  point.tenants = tenants;

  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(producers);
  const size_t per_producer = requests / producers;
  for (size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      while (!go.load()) std::this_thread::yield();
      for (size_t i = 0; i < per_producer; ++i) {
        uint64_t t = static_cast<uint64_t>((p + i) % tenants);
        fleet->Estimate(Req(t, features[i % features.size()])).ValueOrDie();
      }
    });
  }
  util::WallTimer timer;
  go.store(true);
  for (std::thread& t : threads) t.join();
  point.qps =
      static_cast<double>(per_producer * producers) / timer.Seconds();
  point.per_tenant_qps = point.qps / static_cast<double>(tenants);

  // Closed-loop per-tenant tails, measured one request at a time so every
  // tenant's p99 reflects what ITS callers see, not an aggregate average.
  std::vector<double> tenant_p99s(tenants);
  for (size_t t = 0; t < tenants; ++t) {
    std::vector<double> latencies_us;
    latencies_us.reserve(latency_probes);
    for (size_t i = 0; i < latency_probes; ++i) {
      util::WallTimer one;
      fleet->Estimate(Req(t, features[i % features.size()])).ValueOrDie();
      latencies_us.push_back(one.Seconds() * 1e6);
    }
    tenant_p99s[t] = LatencyQuantile(latencies_us, 0.99);
  }
  point.worst_tenant_p99_us =
      *std::max_element(tenant_p99s.begin(), tenant_p99s.end());
  point.median_tenant_p99_us = LatencyQuantile(tenant_p99s, 0.5);
  return point;
}

}  // namespace
}  // namespace warper::bench

int main() {
  using namespace warper;
  using namespace warper::bench;
  BenchInit();

  util::ParallelConfig parallel;
  parallel.threads = 1;
  parallel.deterministic = false;
  nn::SetMatrixParallelism(parallel);

  const bool fast = FastMode();
  const size_t table_rows = fast ? 6000 : 20000;
  const size_t train_size = fast ? 200 : 600;
  // Per curve point; 6 points × 175k ≥ 1M predicates in full mode.
  const size_t requests_per_point = fast ? 2000 : 175000;
  const size_t latency_probes = fast ? 50 : 400;
  const size_t producers =
      std::min<size_t>(4, std::max(1u, std::thread::hardware_concurrency()));

  storage::Table table = storage::MakePrsa(table_rows, /*seed=*/23);
  storage::Annotator annotator(&table);
  ce::SingleTableDomain domain(&annotator);
  util::Rng rng(23);

  // Train the served model ONCE; every tenant serves its own clone (the
  // forward-pass shape is what matters, per-tenant weights are incidental).
  std::vector<storage::RangePredicate> train_preds = workload::GenerateWorkload(
      table, {workload::GenMethod::kW1}, train_size, &rng);
  std::vector<int64_t> train_counts = annotator.BatchCount(train_preds);
  std::vector<ce::LabeledExample> train(train_size);
  nn::Matrix x(train_size, domain.FeatureDim());
  std::vector<double> y(train_size);
  for (size_t i = 0; i < train_size; ++i) {
    train[i] = {domain.FeaturizePredicate(train_preds[i]), train_counts[i]};
    x.SetRow(i, train[i].features);
    y[i] = ce::CardToTarget(train_counts[i]);
  }
  ce::LmMlpConfig model_config;
  model_config.hidden = {kHiddenUnits, kHiddenUnits};
  model_config.train_epochs = fast ? 3 : 8;
  ce::LmMlp model(domain.FeatureDim(), model_config, /*seed=*/23);
  model.Train(x, y);

  // 32 tenants = 32 model clones + 32 Warper controllers with a tiny module
  // config (module training is not what this bench measures).
  core::WarperConfig warper_config;
  warper_config.hidden_units = 8;
  warper_config.hidden_layers = 1;
  warper_config.embedding_dim = 4;
  warper_config.n_i = 2;
  warper_config.n_p = 20;
  std::vector<std::unique_ptr<ce::CardinalityEstimator>> models;
  std::vector<std::unique_ptr<core::Warper>> warpers;
  for (size_t t = 0; t < kMaxTenants; ++t) {
    models.push_back(model.Clone());
    warpers.push_back(std::make_unique<core::Warper>(
        &domain, models.back().get(), warper_config));
    WARPER_CHECK(warpers.back()->Initialize(train).ok());
  }

  std::vector<std::vector<double>> features;
  for (const storage::RangePredicate& pred : workload::GenerateWorkload(
           table, {workload::GenMethod::kW1}, 1024, &rng)) {
    features.push_back(domain.FeaturizePredicate(pred));
  }

  // The saturation curve: one fleet per point over the first N tenants.
  util::ThreadPool dispatch_pool(static_cast<int>(producers));
  std::vector<CurvePoint> curve;
  size_t total_requests = 0;
  for (size_t n : {size_t{1}, size_t{2}, size_t{4}, size_t{8}, size_t{16},
                   size_t{32}}) {
    serve::ServingFleet fleet(FleetConfig(), &dispatch_pool);
    for (size_t t = 0; t < n; ++t) {
      WARPER_CHECK(
          fleet.AddTenant(static_cast<uint64_t>(t), warpers[t].get()).ok());
    }
    WARPER_CHECK(fleet.Start().ok());
    curve.push_back(RunPoint(&fleet, n, producers, requests_per_point,
                             latency_probes, features));
    total_requests += requests_per_point + n * latency_probes;
    fleet.Stop();
    std::cerr << "tenants=" << curve.back().tenants
              << " qps=" << static_cast<uint64_t>(curve.back().qps)
              << " per_tenant_qps="
              << static_cast<uint64_t>(curve.back().per_tenant_qps)
              << " worst_p99=" << curve.back().worst_tenant_p99_us << "us\n";
  }

  // Saturation check: while N tenants fit in the core budget, aggregate qps
  // should stay within 15% of N × the single-tenant line (the fleet adds
  // routing + admission, not serialization). Past the core count the curve
  // is expected to flatten, so those points are exempt.
  const size_t cores = std::max(1u, std::thread::hardware_concurrency());
  const double single_qps = curve.front().qps;
  bool saturation_ok = true;
  for (const CurvePoint& p : curve) {
    if (p.tenants > cores) continue;
    double expected = single_qps * static_cast<double>(p.tenants);
    if (p.qps < 0.85 * std::min(expected,
                                single_qps * static_cast<double>(cores))) {
      saturation_ok = false;
    }
  }

  // Adaptation under load: every tenant's pass lands on the SHARED executor
  // while serving continues; the epoch counts the publishes that hot-swap
  // under the producers.
  serve::ServingFleet fleet(FleetConfig(), &dispatch_pool);
  for (size_t t = 0; t < kMaxTenants; ++t) {
    WARPER_CHECK(
        fleet.AddTenant(static_cast<uint64_t>(t), warpers[t].get()).ok());
  }
  WARPER_CHECK(fleet.Start().ok());
  const uint64_t epoch_before = fleet.Epoch();
  std::vector<ce::LabeledExample> drifted;
  {
    std::vector<storage::RangePredicate> preds = workload::GenerateWorkload(
        table, {workload::GenMethod::kW3}, fast ? 20 : 60, &rng);
    std::vector<int64_t> counts = annotator.BatchCount(preds);
    for (size_t i = 0; i < preds.size(); ++i) {
      drifted.push_back({domain.FeaturizePredicate(preds[i]), counts[i]});
    }
  }
  std::atomic<bool> stop_traffic{false};
  std::vector<double> under_swap_us;
  std::thread prober([&] {
    size_t i = 0;
    while (!stop_traffic.load()) {
      util::WallTimer one;
      fleet.Estimate(Req(i % kMaxTenants, features[i % features.size()]))
          .ValueOrDie();
      under_swap_us.push_back(one.Seconds() * 1e6);
      ++i;
    }
  });
  std::vector<std::future<Result<serve::AdaptationOutcome>>> passes;
  for (size_t t = 0; t < kMaxTenants; ++t) {
    core::Warper::Invocation invocation;
    invocation.new_queries = drifted;
    passes.push_back(
        fleet.SubmitInvocation(static_cast<uint64_t>(t), std::move(invocation)));
  }
  size_t passes_ok = 0;
  for (auto& f : passes) {
    if (f.get().ok()) ++passes_ok;
  }
  stop_traffic.store(true);
  prober.join();
  const uint64_t publishes = fleet.Epoch() - epoch_before;
  const double under_swap_p99 = LatencyQuantile(under_swap_us, 0.99);
  fleet.Stop();

  JsonWriter w;
  w.BeginObject();
  w.Key("bench").Value("fleet");
  w.Key("fast").Value(fast);
  w.Key("kernel").Value(nn::ActiveKernelName());
  w.Key("model").Value("LM-mlp");
  w.Key("hidden_units").Value(static_cast<uint64_t>(kHiddenUnits));
  w.Key("tenants_max").Value(static_cast<uint64_t>(kMaxTenants));
  w.Key("producers").Value(static_cast<uint64_t>(producers));
  w.Key("cores").Value(static_cast<uint64_t>(cores));
  w.Key("requests_total").Value(static_cast<uint64_t>(total_requests));
  w.Key("curve").BeginArray();
  for (const CurvePoint& p : curve) {
    w.BeginObject();
    w.Key("tenants").Value(static_cast<uint64_t>(p.tenants));
    w.Key("qps").Value(p.qps, 1);
    w.Key("per_tenant_qps").Value(p.per_tenant_qps, 1);
    w.Key("worst_tenant_p99_us").Value(p.worst_tenant_p99_us, 1);
    w.Key("median_tenant_p99_us").Value(p.median_tenant_p99_us, 1);
    w.EndObject();
  }
  w.EndArray();
  w.Key("saturation_within_15pct_until_cores").Value(saturation_ok);
  w.Key("adapt_under_load").BeginObject();
  w.Key("passes_submitted").Value(static_cast<uint64_t>(kMaxTenants));
  w.Key("passes_ok").Value(static_cast<uint64_t>(passes_ok));
  w.Key("publishes").Value(publishes);
  w.Key("estimate_p99_us_during_swaps").Value(under_swap_p99, 1);
  w.EndObject();
  AttachMetricsSnapshot(&w);
  w.EndObject();
  EmitJson(w, "BENCH_fleet.json");
  return 0;
}
