// Figure 8: adaptation curves (GMQ vs adaptation step) for six drift pairs
// across datasets, LM-mlp, all five methods — the grid version of Figure 6.
#include "bench_common.h"

int main() {
  using namespace warper;
  bench::BenchInit();
  bench::BenchScale scale = bench::GetScale();

  util::PrintBanner(std::cout,
                    "Figure 8: adaptation curves across drift pairs");

  struct Panel {
    const char* dataset;
    const char* pair;
  };
  std::vector<Panel> panels = {{"PRSA", "w1/3"},  {"PRSA", "w2/4"},
                               {"Poker", "w1/3"}, {"Poker", "w5/4"},
                               {"Higgs", "w1/3"}, {"Higgs", "w2/4"}};

  for (const Panel& panel : panels) {
    eval::SingleTableDriftSpec spec;
    spec.table_factory = bench::DatasetFactory(panel.dataset, scale.table_rows);
    spec.workload = workload::WorkloadSpec::Parse(panel.pair).ValueOrDie();
    spec.model_factory = eval::LmMlpFactory();
    spec.methods = {eval::Method::kFt, eval::Method::kMix, eval::Method::kAug,
                    eval::Method::kHem, eval::Method::kWarper};
    spec.config = bench::DefaultConfig(scale, /*seed=*/82);
    spec.config.gen_opts = bench::GenOptsFor(panel.dataset);

    eval::DriftExperimentResult result = eval::RunSingleTableDrift(spec);
    bench::PrintCurves(
        std::cout,
        std::string(panel.dataset) + " " + panel.pair + " (train -> new)",
        result);
  }
  std::cout << "\nPaper shape: Warper reaches low GMQ in fewer queries than "
               "FT/MIX on drifts with a sizable gap; AUG/HEM sit between.\n";
  return 0;
}
