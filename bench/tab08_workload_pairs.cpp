// Table 8: Warper speedups for ten different train→new workload pairs on
// PRSA (c2, LM-mlp).
//
// Paper shape: median Δ.5/Δ.8/Δ1 around 4.7/4.6/3.7; speedups are smaller
// when the accuracy gap δ_m is already small (w34/125, w35/124); δ_m and
// δ_js are not perfectly correlated.
#include "bench_common.h"

#include "util/stats.h"

int main() {
  using namespace warper;
  bench::BenchInit();
  bench::BenchScale scale = bench::GetScale();

  util::PrintBanner(std::cout,
                    "Table 8: different workload pairs on PRSA (c2, LM-mlp)");

  std::vector<std::string> pairs = {"w1/2",  "w1/3",  "w1/4",    "w2/3",
                                    "w2/4",  "w5/3",  "w5/4",    "w34/125",
                                    "w35/124", "w125/34"};
  util::TablePrinter table({"Wkld", "dm", "djs", "D.5", "D.8", "D1"});
  std::vector<double> d50s, d80s, d100s;

  for (const std::string& pair : pairs) {
    eval::SingleTableDriftSpec spec;
    spec.table_factory = bench::DatasetFactory("PRSA", scale.table_rows);
    spec.workload = workload::WorkloadSpec::Parse(pair).ValueOrDie();
    spec.model_factory = eval::LmMlpFactory();
    spec.methods = {eval::Method::kFt, eval::Method::kWarper};
    spec.config = bench::DefaultConfig(scale, /*seed=*/81);

    eval::DriftExperimentResult result = eval::RunSingleTableDrift(spec);
    const eval::MethodResult& warper_result = result.methods[1];
    table.AddRow({pair, util::FormatDouble(result.delta_m, 1),
                  util::FormatDouble(result.delta_js, 2),
                  util::FormatDouble(warper_result.deltas.d50, 1),
                  util::FormatDouble(warper_result.deltas.d80, 1),
                  util::FormatDouble(warper_result.deltas.d100, 1)});
    d50s.push_back(warper_result.deltas.d50);
    d80s.push_back(warper_result.deltas.d80);
    d100s.push_back(warper_result.deltas.d100);
  }
  table.Print(std::cout);
  std::cout << "\nMedian speedups: D.5=" << util::FormatDouble(util::Median(d50s), 1)
            << " D.8=" << util::FormatDouble(util::Median(d80s), 1)
            << " D1=" << util::FormatDouble(util::Median(d100s), 1)
            << " (paper medians: 4.7 / 4.6 / 3.7)\n";
  return 0;
}
