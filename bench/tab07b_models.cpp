// Table 7b: generalization across CE models — LM-gbt (re-trains), LM-ply
// and LM-rbf (kernel regressors, re-train), and single-table MSCN
// (fine-tunes) — under workload drift c2 (w12/345).
//
// Paper shape: Warper helps most for the NN-style models (MSCN gets large
// speedups); the re-training models see smaller but ≥1× speedups.
#include "bench_common.h"

int main() {
  using namespace warper;
  bench::BenchInit();
  bench::BenchScale scale = bench::GetScale();

  util::PrintBanner(std::cout,
                    "Table 7b: Warper across CE models (c2, w12/345)");

  struct ModelEntry {
    const char* name;
    eval::ModelFactory factory;
  };
  std::vector<ModelEntry> models = {
      {"LM-gbt", eval::LmGbtFactory()},
      {"LM-ply", eval::LmPlyFactory()},
      {"LM-rbf", eval::LmRbfFactory()},
      {"MSCN", eval::MscnSingleTableFactory()},
  };
  std::vector<std::string> datasets = {"PRSA", "Poker", "Higgs"};

  util::TablePrinter table({"Dataset", "Wkld", "Model", "dm", "djs", "D.5",
                            "D.8", "D1"});
  for (const ModelEntry& entry : models) {
    for (const std::string& dataset : datasets) {
      eval::SingleTableDriftSpec spec;
      spec.table_factory = bench::DatasetFactory(dataset, scale.table_rows);
      spec.workload = workload::WorkloadSpec::Parse("w12/345").ValueOrDie();
      spec.model_factory = entry.factory;
      spec.methods = {eval::Method::kFt, eval::Method::kWarper};
      spec.config = bench::DefaultConfig(scale, /*seed=*/72);
      spec.config.gen_opts = bench::GenOptsFor(dataset);

      eval::DriftExperimentResult result = eval::RunSingleTableDrift(spec);
      table.AddRow(bench::DeltaRow(dataset, "w12/345", entry.name, result,
                                   result.methods[1]));
    }
  }
  table.Print(std::cout);
  std::cout << "\nPaper: MSCN gets 2.5-8x speedups; LM-gbt/ply/rbf see "
               "1.0-6.8x and Warper is never worse than FT/RT.\n";
  return 0;
}
