// Targeted vs global adaptation under a LOCALIZED workload drift: only the
// "B" predicate templates (pollution-column ranges) change their constant
// distribution post-drift while the "A" templates (calendar ranges) stay
// healthy. Per-template error tracking (TrackerConfig.targeted) should
// concentrate the pick/annotate budget n_p on the unhealthy templates and
// match the global trigger's GMQ recovery at a fraction of the annotation
// cost c_A. Emits BENCH_targeted.json.
//
// Three Figure-2-style drift schedules, expressed as drift::DriftSpec
// profiles: a one-shot permanent shift ("workload"), a periodic on/off
// shift ("osc") and a linear ramp ("workload@1.0/<steps>"). Both arms of
// each schedule run the SAME pregenerated arrival stream, the same seeds
// and the same initial model clone — the only difference is
// config.tracker.targeted.
//
// `--check` turns the bench into a CI gate: targeted must reach a final
// post-drift GMQ within 5% of global on every schedule while annotating at
// least 25% fewer rows in total.
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "ce/lm.h"
#include "ce/metrics.h"
#include "core/template_tracker.h"
#include "drift/schedule.h"
#include "core/warper.h"
#include "storage/annotator.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace warper::bench {
namespace {

// A template = a fixed set of constrained columns; instances differ only in
// their constants. The A templates stay distributionally stable for the
// whole run; the B templates' range centers jump from the low region of
// their columns to the high region when the schedule says "drifted".
const std::vector<std::vector<size_t>> kTemplatesA = {{1, 2}, {2}};
const std::vector<std::vector<size_t>> kTemplatesB = {{3, 4}, {3}};

storage::RangePredicate TemplateInstance(const storage::Table& table,
                                         const std::vector<size_t>& cols,
                                         double center_lo, double center_hi,
                                         double width_frac, util::Rng* rng) {
  storage::RangePredicate pred = storage::RangePredicate::FullRange(table);
  for (size_t c : cols) {
    double lo = table.column(c).Min();
    double hi = table.column(c).Max();
    double span = hi - lo;
    double center = lo + rng->Uniform(center_lo, center_hi) * span;
    double width = width_frac * span;
    pred.low[c] = std::max(lo, center - width / 2);
    pred.high[c] = std::min(hi, center + width / 2);
  }
  return pred;
}

// intensity ∈ [0, 1]: 0 = pre-drift constants, 1 = fully shifted. The B
// center window slides from [0.05, 0.40] up to [0.55, 0.90].
storage::RangePredicate DrawQuery(const storage::Table& table, bool from_b,
                                  double intensity, util::Rng* rng) {
  if (!from_b) {
    const auto& cols = kTemplatesA[static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(kTemplatesA.size()) - 1))];
    return TemplateInstance(table, cols, 0.10, 0.80, 0.35, rng);
  }
  const auto& cols = kTemplatesB[static_cast<size_t>(
      rng->UniformInt(0, static_cast<int64_t>(kTemplatesB.size()) - 1))];
  double shift = 0.5 * intensity;
  return TemplateInstance(table, cols, 0.05 + shift, 0.40 + shift, 0.25, rng);
}

struct StepArrivals {
  std::vector<ce::LabeledExample> queries;  // cardinality = -1 ⇒ unlabeled
};

// A named drift profile; the per-step intensity of the B templates comes
// from DriftSchedule::WorkloadWeightAt (warmup steps are always 0).
struct NamedDrift {
  std::string name;
  drift::DriftSpec spec;
};

struct ScheduleScale {
  size_t warmup_steps = 3;
  size_t drift_steps = 6;
  size_t labeled_per_step = 16;    // half A, half B
  size_t unlabeled_per_step = 96;  // half A, half B
  size_t n_p = 40;
  size_t test_per_group = 40;
};

// The full pregenerated input of one schedule, identical across both arms.
struct ScheduleInputs {
  std::vector<StepArrivals> steps;
  std::vector<ce::LabeledExample> test_set;  // post-drift mixture
};

ScheduleInputs BuildInputs(const storage::Table& table,
                           const storage::Annotator& annotator,
                           const ce::SingleTableDomain& domain,
                           const drift::DriftSchedule& schedule,
                           const ScheduleScale& scale, uint64_t seed) {
  util::Rng rng(seed);
  ScheduleInputs inputs;
  const size_t total_steps = scale.warmup_steps + scale.drift_steps;
  for (size_t s = 0; s < total_steps; ++s) {
    double intensity = s < scale.warmup_steps
                           ? 0.0
                           : schedule.WorkloadWeightAt(s - scale.warmup_steps);
    StepArrivals step;
    std::vector<storage::RangePredicate> labeled_preds;
    for (size_t i = 0; i < scale.labeled_per_step; ++i) {
      labeled_preds.push_back(
          DrawQuery(table, /*from_b=*/i % 2 == 0, intensity, &rng));
    }
    std::vector<int64_t> counts = annotator.BatchCount(labeled_preds);
    for (size_t i = 0; i < labeled_preds.size(); ++i) {
      step.queries.push_back(
          {domain.FeaturizePredicate(labeled_preds[i]), counts[i]});
    }
    for (size_t i = 0; i < scale.unlabeled_per_step; ++i) {
      storage::RangePredicate pred =
          DrawQuery(table, /*from_b=*/i % 2 == 0, intensity, &rng);
      step.queries.push_back({domain.FeaturizePredicate(pred), -1});
    }
    inputs.steps.push_back(std::move(step));
  }
  // Post-drift evaluation mixture: stable A plus fully-shifted B.
  std::vector<storage::RangePredicate> test_preds;
  for (size_t i = 0; i < scale.test_per_group; ++i) {
    test_preds.push_back(DrawQuery(table, /*from_b=*/false, 0.0, &rng));
    test_preds.push_back(DrawQuery(table, /*from_b=*/true, 1.0, &rng));
  }
  std::vector<int64_t> counts = annotator.BatchCount(test_preds);
  for (size_t i = 0; i < test_preds.size(); ++i) {
    inputs.test_set.push_back(
        {domain.FeaturizePredicate(test_preds[i]), counts[i]});
  }
  return inputs;
}

struct ArmResult {
  double gmq_initial = 0.0;
  double gmq_final = 0.0;
  std::vector<double> gmq_curve;
  size_t annotated_total = 0;
  size_t targeted_invocations = 0;
  size_t targeted_skips = 0;
  size_t unhealthy_templates_peak = 0;
};

core::WarperConfig ArmConfig(bool targeted, const std::string& export_name,
                             const ScheduleScale& scale) {
  core::WarperConfig config;
  config.n_p = scale.n_p;
  config.n_i = 60;
  // Keep the arrival stream firmly in c3 territory: one step's arrivals
  // already exceed γ (so c2 never fires) while the labeled trickle stays
  // under it (labels inadequate ⇒ c3).
  config.gamma = scale.labeled_per_step * 4;
  config.tracker.targeted = targeted;
  config.tracker.template_metrics = true;
  config.tracker.export_name = export_name;
  return config;
}

ArmResult RunArm(const ce::SingleTableDomain& domain,
                 const ce::CardinalityEstimator& trained,
                 const std::vector<ce::LabeledExample>& train_corpus,
                 const ScheduleInputs& inputs, const ScheduleScale& scale,
                 bool targeted, const std::string& export_name) {
  std::unique_ptr<ce::CardinalityEstimator> model = trained.Clone();
  WARPER_CHECK(model != nullptr);
  core::Warper warper(&domain, model.get(),
                      ArmConfig(targeted, export_name, scale));
  WARPER_CHECK(warper.Initialize(train_corpus).ok());

  ArmResult arm;
  arm.gmq_initial = ce::ModelGmq(*model, inputs.test_set);
  for (const StepArrivals& step : inputs.steps) {
    core::Warper::Invocation invocation;
    invocation.new_queries = step.queries;
    invocation.annotation_budget = scale.n_p;
    Result<core::Warper::InvocationResult> invoked =
        warper.Invoke(invocation);
    WARPER_CHECK_MSG(invoked.ok(), invoked.status().ToString());
    const core::Warper::InvocationResult& result = invoked.ValueOrDie();
    arm.annotated_total += result.annotated;
    if (result.targeted) ++arm.targeted_invocations;
    if (result.targeted_skip) ++arm.targeted_skips;
    arm.unhealthy_templates_peak =
        std::max(arm.unhealthy_templates_peak, result.unhealthy_templates);
    arm.gmq_curve.push_back(ce::ModelGmq(*model, inputs.test_set));
  }
  arm.gmq_final = arm.gmq_curve.back();
  return arm;
}

void EmitArm(JsonWriter* w, const char* key, const ArmResult& arm) {
  w->Key(key).BeginObject();
  w->Key("gmq_initial").Value(arm.gmq_initial, 3);
  w->Key("gmq_final").Value(arm.gmq_final, 3);
  w->Key("annotated_total").Value(static_cast<uint64_t>(arm.annotated_total));
  w->Key("targeted_invocations")
      .Value(static_cast<uint64_t>(arm.targeted_invocations));
  w->Key("targeted_skips").Value(static_cast<uint64_t>(arm.targeted_skips));
  w->Key("unhealthy_templates_peak")
      .Value(static_cast<uint64_t>(arm.unhealthy_templates_peak));
  w->Key("gmq_curve").BeginArray();
  for (double g : arm.gmq_curve) w->Value(g, 3);
  w->EndArray();
  w->EndObject();
}

}  // namespace
}  // namespace warper::bench

int main(int argc, char** argv) {
  using namespace warper;
  using namespace warper::bench;
  BenchInit();
  bool check = false;
  std::string out_path = "BENCH_targeted.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      out_path = argv[i];
    }
  }
  const bool fast = FastMode();

  ScheduleScale scale;
  size_t table_rows = 20000;
  size_t train_per_group = 300;
  if (fast) {
    table_rows = 8000;
    train_per_group = 150;
    scale.warmup_steps = 2;
    scale.drift_steps = 4;
    scale.labeled_per_step = 16;
    scale.unlabeled_per_step = 64;
    scale.n_p = 32;
    scale.test_per_group = 30;
  }

  util::PrintBanner(std::cout,
                    "Targeted vs global adaptation under localized drift");

  storage::Table table = storage::MakePrsa(table_rows, /*seed=*/17);
  storage::Annotator annotator(&table);
  ce::SingleTableDomain domain(&annotator);

  // Training corpus: pre-drift constants for BOTH template groups, so every
  // template starts healthy.
  std::vector<ce::LabeledExample> train_corpus;
  {
    util::Rng rng(23);
    std::vector<storage::RangePredicate> preds;
    for (size_t i = 0; i < 2 * train_per_group; ++i) {
      preds.push_back(DrawQuery(table, /*from_b=*/i % 2 == 0, 0.0, &rng));
    }
    std::vector<int64_t> counts = annotator.BatchCount(preds);
    for (size_t i = 0; i < preds.size(); ++i) {
      train_corpus.push_back({domain.FeaturizePredicate(preds[i]), counts[i]});
    }
  }
  ce::LmMlp trained(domain.FeatureDim(), ce::LmMlpConfig{}, /*seed=*/17);
  {
    nn::Matrix x;
    std::vector<double> y;
    ce::ExamplesToMatrix(train_corpus, &x, &y);
    trained.Train(x, y);
  }

  // oneshot = immediate permanent flip; periodic = oscillation at every
  // step (the π-escalation stressor); ramp = linear onset over the whole
  // drift window. All three are plain DriftSpec strings.
  std::vector<NamedDrift> schedules = {
      {"oneshot", drift::DriftSpec::Parse("workload").ValueOrDie()},
      {"periodic", drift::DriftSpec::Parse("osc").ValueOrDie()},
      {"ramp", drift::DriftSpec::Parse(
                   "workload@1.0/" + std::to_string(scale.drift_steps))
                   .ValueOrDie()},
  };

  JsonWriter w;
  w.BeginObject();
  w.Key("bench").Value("targeted");
  w.Key("fast").Value(fast);
  w.Key("dataset").Value("PRSA");
  w.Key("n_p").Value(static_cast<uint64_t>(scale.n_p));
  w.Key("warmup_steps").Value(static_cast<uint64_t>(scale.warmup_steps));
  w.Key("drift_steps").Value(static_cast<uint64_t>(scale.drift_steps));

  size_t annotated_global = 0;
  size_t annotated_targeted = 0;
  bool recovery_ok = true;
  std::string recovery_detail;

  w.Key("schedules").BeginArray();
  for (size_t si = 0; si < schedules.size(); ++si) {
    const NamedDrift& schedule = schedules[si];
    drift::DriftSchedule drift_schedule(schedule.spec, workload::WorkloadSpec{},
                                        scale.drift_steps);
    ScheduleInputs inputs = BuildInputs(table, annotator, domain,
                                        drift_schedule, scale,
                                        /*seed=*/101 + si);
    ArmResult global = RunArm(domain, trained, train_corpus, inputs, scale,
                              /*targeted=*/false,
                              "global-" + schedule.name);
    ArmResult targeted = RunArm(domain, trained, train_corpus, inputs, scale,
                                /*targeted=*/true,
                                "targeted-" + schedule.name);
    annotated_global += global.annotated_total;
    annotated_targeted += targeted.annotated_total;
    double gmq_ratio =
        global.gmq_final > 0.0 ? targeted.gmq_final / global.gmq_final : 1.0;
    if (gmq_ratio > 1.05) {
      recovery_ok = false;
      recovery_detail += schedule.name + " gmq ratio " +
                         util::FormatDouble(gmq_ratio, 3) + "; ";
    }

    std::cout << schedule.name << ": global gmq "
              << util::FormatDouble(global.gmq_initial, 2) << " -> "
              << util::FormatDouble(global.gmq_final, 2) << " ("
              << global.annotated_total << " annotated), targeted "
              << util::FormatDouble(targeted.gmq_initial, 2) << " -> "
              << util::FormatDouble(targeted.gmq_final, 2) << " ("
              << targeted.annotated_total << " annotated, "
              << targeted.targeted_invocations << " targeted passes, "
              << targeted.targeted_skips << " skips)\n";

    w.BeginObject();
    w.Key("name").Value(schedule.name);
    w.Key("drift").Value(schedule.spec.ToString());
    EmitArm(&w, "global", global);
    EmitArm(&w, "targeted", targeted);
    w.Key("gmq_ratio").Value(gmq_ratio, 3);
    w.Key("annotated_ratio")
        .Value(global.annotated_total > 0
                   ? static_cast<double>(targeted.annotated_total) /
                         static_cast<double>(global.annotated_total)
                   : 1.0,
               3);
    w.EndObject();
  }
  w.EndArray();

  double annotated_ratio =
      annotated_global > 0 ? static_cast<double>(annotated_targeted) /
                                 static_cast<double>(annotated_global)
                           : 1.0;
  w.Key("annotated_total_global")
      .Value(static_cast<uint64_t>(annotated_global));
  w.Key("annotated_total_targeted")
      .Value(static_cast<uint64_t>(annotated_targeted));
  w.Key("annotated_ratio").Value(annotated_ratio, 3);
  w.Key("recovery_ok").Value(recovery_ok);
  AttachErrLogSnapshot(&w);
  AttachMetricsSnapshot(&w);
  w.EndObject();
  EmitJson(w, out_path);

  std::cout << "total annotated: global " << annotated_global << ", targeted "
            << annotated_targeted << " (ratio "
            << util::FormatDouble(annotated_ratio, 3) << ")\n";

  if (check) {
    if (!recovery_ok) {
      std::cerr << "CHECK FAILED: targeted final GMQ worse than 1.05x "
                   "global: "
                << recovery_detail << "\n";
      return 1;
    }
    if (annotated_ratio > 0.75) {
      std::cerr << "CHECK FAILED: targeted annotated "
                << util::FormatDouble(annotated_ratio, 3)
                << " of global rows (gate: <= 0.75)\n";
      return 1;
    }
  }
  return 0;
}
