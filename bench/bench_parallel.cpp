// Microbenchmark for the parallel kernels: nn::Matrix MatMul and
// storage::ParallelAnnotator batch annotation, serial vs. the shared thread
// pool. Emits one JSON document on stdout so CI can track speedups, and
// verifies that every parallel result is bit-identical to its serial
// counterpart (the deterministic=true contract).
//
// Expected shape: ≥2× MatMul / annotation speedup on 4+ cores; ~1× (and a
// small dispatch overhead) on a single-core host, where ParallelFor stays
// inline.
#include "bench_common.h"

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "core/config.h"
#include "nn/matrix.h"
#include "storage/annotator.h"
#include "storage/parallel_annotator.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "workload/generator.h"

using namespace warper;

namespace {

nn::Matrix RandomMatrix(size_t rows, size_t cols, util::Rng* rng) {
  nn::Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      m.At(r, c) = rng->Uniform() * 2.0 - 1.0;
    }
  }
  return m;
}

double MedianMs(std::vector<double>& samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

struct KernelRow {
  std::string kernel;
  std::string shape;
  double serial_ms = 0.0;
  double parallel_ms = 0.0;
  bool bit_identical = false;

  double Speedup() const {
    return parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0;
  }
};

template <typename Fn>
double TimeMedianMs(int repeats, const Fn& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(repeats));
  for (int r = 0; r < repeats; ++r) {
    util::WallTimer timer;
    fn();
    samples.push_back(timer.Seconds() * 1000.0);
  }
  return MedianMs(samples);
}

KernelRow BenchMatMul(size_t m, size_t k, size_t n, int repeats) {
  util::Rng rng(17);
  nn::Matrix a = RandomMatrix(m, k, &rng);
  nn::Matrix b = RandomMatrix(k, n, &rng);

  util::ParallelConfig serial;
  serial.threads = 1;
  core::ApplyParallelConfig(serial);
  nn::Matrix serial_result = a.MatMul(b);
  KernelRow row;
  row.kernel = "matmul";
  {
    std::ostringstream shape;
    shape << m << "x" << k << "*" << k << "x" << n;
    row.shape = shape.str();
  }
  row.serial_ms = TimeMedianMs(repeats, [&] { a.MatMul(b); });

  util::ParallelConfig parallel;  // threads = 0: every core
  core::ApplyParallelConfig(parallel);
  nn::Matrix parallel_result = a.MatMul(b);
  row.parallel_ms = TimeMedianMs(repeats, [&] { a.MatMul(b); });
  row.bit_identical = parallel_result.data() == serial_result.data();
  return row;
}

KernelRow BenchAnnotation(size_t rows, size_t num_preds, int repeats) {
  storage::Table table = storage::MakePrsa(rows, /*seed=*/17);
  util::Rng rng(18);
  std::vector<storage::RangePredicate> preds = workload::GenerateWorkload(
      table, {workload::GenMethod::kW1}, num_preds, &rng);

  storage::Annotator annotator(&table);
  std::vector<int64_t> serial_counts = annotator.BatchCount(preds);
  KernelRow row;
  row.kernel = "annotate";
  {
    std::ostringstream shape;
    shape << rows << "rows x " << num_preds << "preds";
    row.shape = shape.str();
  }
  row.serial_ms = TimeMedianMs(repeats, [&] { annotator.BatchCount(preds); });

  util::ParallelConfig parallel;
  core::ApplyParallelConfig(parallel);
  storage::ParallelAnnotator parallel_annotator(&table, parallel);
  std::vector<int64_t> parallel_counts = parallel_annotator.BatchCount(preds);
  row.parallel_ms =
      TimeMedianMs(repeats, [&] { parallel_annotator.BatchCount(preds); });
  row.bit_identical = parallel_counts == serial_counts;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchInit();
  bool fast = bench::FastMode();
  int repeats = fast ? 3 : 7;
  std::string out_path = argc > 1 ? argv[1] : "BENCH_parallel.json";

  std::vector<KernelRow> rows;
  rows.push_back(BenchMatMul(256, 256, 256, repeats));
  rows.push_back(BenchMatMul(512, 384, 256, repeats));
  rows.push_back(BenchAnnotation(fast ? 20000 : 120000, 64, repeats));

  util::ParallelConfig hw;  // report what the pool resolved to
  bench::JsonWriter json;
  json.BeginObject();
  json.Key("hardware_threads").Value(hw.ResolvedThreads());
  json.Key("results").BeginArray();
  for (const KernelRow& r : rows) {
    json.BeginObject();
    json.Key("kernel").Value(r.kernel);
    json.Key("shape").Value(r.shape);
    json.Key("serial_ms").Value(r.serial_ms, 3);
    json.Key("parallel_ms").Value(r.parallel_ms, 3);
    json.Key("speedup").Value(r.Speedup(), 2);
    json.Key("bit_identical").Value(r.bit_identical);
    json.EndObject();
  }
  json.EndArray();
  // Pool counters make the speedup legible: queue depth and tasks executed
  // say how much work actually reached the workers.
  bench::AttachMetricsSnapshot(&json);
  json.EndObject();
  bench::EmitJson(json, out_path);

  // Non-zero exit when determinism is violated, so CI catches it even
  // without parsing the JSON.
  for (const KernelRow& r : rows) {
    if (!r.bit_identical) return 1;
  }
  return 0;
}
