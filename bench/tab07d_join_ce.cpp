// Table 7d: join cardinality estimation with MSCN on the IMDB-like star
// schema, workload drift w4 → w1 (c2) with a slow arrival rate.
//
// Paper: Δ.5/.8/1 = 2.1 / 2.8 / 1.1 with δ_m = 72, δ_js = 0.52.
#include "bench_common.h"

int main() {
  using namespace warper;
  bench::BenchInit();
  bench::BenchScale scale = bench::GetScale();

  util::PrintBanner(std::cout, "Table 7d: join CE (MSCN on IMDB-like, w4/w1)");

  eval::StarJoinDriftSpec spec;
  size_t titles = bench::FastMode() ? 500 : 1500;
  spec.tables_factory = [titles](uint64_t seed) {
    return storage::MakeImdb(titles, seed);
  };
  spec.train_method = workload::GenMethod::kW4;
  spec.drifted_method = workload::GenMethod::kW1;
  spec.methods = {eval::Method::kFt, eval::Method::kWarper};
  spec.config = bench::DefaultConfig(scale, /*seed=*/75);
  // One query per minute in the paper: fewer arrivals per step.
  spec.config.train_size = std::min<size_t>(scale.train_size, 600);
  spec.config.queries_per_step = std::max<size_t>(8, scale.queries_per_step / 8);
  spec.config.steps = scale.steps + 1;

  eval::DriftExperimentResult result = eval::RunStarJoinDrift(spec);
  bench::PrintCurves(std::cout, "IMDB-like star join, MSCN, w4->w1", result);

  util::TablePrinter table({"Dataset", "Wkld", "Model", "dm", "djs", "D.5",
                            "D.8", "D1"});
  table.AddRow(bench::DeltaRow("IMDB*", "w4/w1", "MSCN", result,
                               result.methods[1]));
  table.Print(std::cout);
  std::cout << "\nPaper: 2.1 / 2.8 / 1.1 speedups at delta_m=72, "
               "delta_js=0.52.\n";
  return 0;
}
