// Annotation-engine throughput bench: the seed row-at-a-time scalar scan vs
// the fused per-block engine (scalar kernels, SIMD kernels, SIMD + threads)
// on a Higgs-scale table, plus a sorted/clustered scenario where zone-map
// pruning does the heavy lifting. Emits BENCH_annotate.json (path
// overridable as argv[1]) and mirrors it on stdout, extending the repo's
// perf trajectory. Table 6 of the paper says ground-truth annotation (c_A)
// dominates invocation cost — this is the bench that tracks killing it.
//
// `--check` turns the bench into a CI smoke gate: every engine path must
// produce counts EXACTLY equal to the seed scalar scan (integer equality,
// no tolerance), and on AVX2 hardware the fused SIMD path must beat the
// seed scan outright.
#include "bench_common.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "storage/annotate_engine.h"
#include "storage/annotate_kernels.h"
#include "storage/annotator.h"
#include "storage/datasets.h"
#include "storage/parallel_annotator.h"
#include "storage/predicate.h"
#include "util/cpu_features.h"
#include "util/rng.h"
#include "util/timer.h"
#include "workload/generator.h"

using namespace warper;

namespace {

// The seed implementation, verbatim (pre-engine Annotator::BatchCount):
// per-row all-predicates over the constrained columns with early exit. This
// is the baseline every speedup in the JSON is measured against.
std::vector<int64_t> SeedBatchCount(
    const storage::Table& table,
    const std::vector<storage::RangePredicate>& preds) {
  struct Compiled {
    std::vector<size_t> cols;
    std::vector<double> low, high;
  };
  std::vector<Compiled> compiled;
  for (const auto& pred : preds) {
    Compiled cp;
    for (size_t c = 0; c < pred.NumColumns(); ++c) {
      if (pred.Constrains(table, c)) {
        cp.cols.push_back(c);
        cp.low.push_back(pred.low[c]);
        cp.high.push_back(pred.high[c]);
      }
    }
    compiled.push_back(std::move(cp));
  }
  std::vector<int64_t> counts(preds.size(), 0);
  for (size_t r = 0; r < table.NumRows(); ++r) {
    for (size_t p = 0; p < compiled.size(); ++p) {
      const Compiled& cp = compiled[p];
      bool match = true;
      for (size_t i = 0; i < cp.cols.size(); ++i) {
        double v = table.column(cp.cols[i]).Value(r);
        if (v < cp.low[i] || v > cp.high[i]) {
          match = false;
          break;
        }
      }
      counts[p] += match ? 1 : 0;
    }
  }
  return counts;
}

std::vector<int64_t> FusedCount(
    const storage::Table& table,
    const std::vector<storage::RangePredicate>& preds,
    const storage::internal::AnnotateKernelTable& kernels,
    storage::internal::AnnotateStats* stats = nullptr) {
  storage::internal::CompiledBatch batch(table, preds);
  std::vector<int64_t> counts(preds.size(), 0);
  storage::internal::FusedCount(batch, kernels, 0, table.NumRows(),
                                counts.data(), stats);
  return counts;
}

// Median seconds of `fn` over `repeats` samples.
template <typename Fn>
double TimeSeconds(int repeats, Fn&& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(repeats));
  for (int r = 0; r < repeats; ++r) {
    util::WallTimer timer;
    fn();
    samples.push_back(timer.Seconds());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

// Predicate-rows per second: the annotator's unit of work.
double Throughput(size_t rows, size_t preds, double seconds) {
  return seconds > 0.0
             ? static_cast<double>(rows) * static_cast<double>(preds) / seconds
             : 0.0;
}

struct ScenarioResult {
  size_t rows = 0;
  size_t preds = 0;
  double seed_s = 0.0;
  double fused_scalar_s = 0.0;
  double fused_simd_s = 0.0;
  double fused_simd_threads_s = 0.0;
  storage::internal::AnnotateStats simd_stats;  // one fused pass
  bool exact = true;
};

ScenarioResult RunScenario(const storage::Table& table,
                           const std::vector<storage::RangePredicate>& preds,
                           int repeats, bool avx2) {
  const auto& scalar = storage::internal::ScalarAnnotateKernels();
  const auto& simd = avx2 ? storage::internal::Avx2AnnotateKernels() : scalar;

  ScenarioResult result;
  result.rows = table.NumRows();
  result.preds = preds.size();

  // Materialize lazy caches (domain stats, zone maps) outside the timers:
  // steady-state annotation passes reuse them.
  std::vector<int64_t> want = SeedBatchCount(table, preds);
  result.exact = FusedCount(table, preds, scalar) == want &&
                 FusedCount(table, preds, simd, &result.simd_stats) == want;

  result.seed_s = TimeSeconds(repeats, [&] { SeedBatchCount(table, preds); });
  result.fused_scalar_s =
      TimeSeconds(repeats, [&] { FusedCount(table, preds, scalar); });
  result.fused_simd_s =
      TimeSeconds(repeats, [&] { FusedCount(table, preds, simd); });

  util::ParallelConfig pool_config;
  pool_config.threads = 0;  // whole pool
  storage::ParallelAnnotator parallel(&table, pool_config);
  result.exact = result.exact && parallel.BatchCount(preds) == want;
  result.fused_simd_threads_s =
      TimeSeconds(repeats, [&] { parallel.BatchCount(preds); });
  return result;
}

void EmitScenario(bench::JsonWriter* json, const char* name,
                  const ScenarioResult& r) {
  double base = Throughput(r.rows, r.preds, r.seed_s);
  json->Key(name).BeginObject();
  json->Key("rows").Value(static_cast<uint64_t>(r.rows));
  json->Key("predicates").Value(static_cast<uint64_t>(r.preds));
  json->Key("exact_vs_seed").Value(r.exact);
  json->Key("seed_scalar_s").Value(r.seed_s, 4);
  json->Key("fused_scalar_s").Value(r.fused_scalar_s, 4);
  json->Key("fused_simd_s").Value(r.fused_simd_s, 4);
  json->Key("fused_simd_threads_s").Value(r.fused_simd_threads_s, 4);
  json->Key("seed_mpredrows_per_s").Value(base / 1e6, 1);
  json->Key("fused_simd_mpredrows_per_s")
      .Value(Throughput(r.rows, r.preds, r.fused_simd_s) / 1e6, 1);
  json->Key("fused_scalar_speedup")
      .Value(r.fused_scalar_s > 0.0 ? r.seed_s / r.fused_scalar_s : 0.0, 2);
  json->Key("fused_simd_speedup")
      .Value(r.fused_simd_s > 0.0 ? r.seed_s / r.fused_simd_s : 0.0, 2);
  json->Key("fused_simd_threads_speedup")
      .Value(r.fused_simd_threads_s > 0.0 ? r.seed_s / r.fused_simd_threads_s
                                          : 0.0,
             2);
  double blocks_total =
      static_cast<double>((r.rows + storage::Column::kZoneBlockRows - 1) /
                          storage::Column::kZoneBlockRows) *
      static_cast<double>(r.preds);
  json->Key("blocks_pruned_frac")
      .Value(blocks_total > 0.0
                 ? static_cast<double>(r.simd_stats.blocks_pruned) /
                       blocks_total
                 : 0.0,
             3);
  json->Key("blocks_shortcircuited_frac")
      .Value(blocks_total > 0.0
                 ? static_cast<double>(r.simd_stats.blocks_shortcircuited) /
                       blocks_total
                 : 0.0,
             3);
  json->Key("rows_scanned_frac")
      .Value(static_cast<double>(r.simd_stats.rows_scanned) /
                 (static_cast<double>(r.rows) * static_cast<double>(r.preds)),
             3);
  json->EndObject();
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchInit();
  bool check = false;
  std::string out_path = "BENCH_annotate.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      out_path = argv[i];
    }
  }
  bool fast = bench::FastMode();
  int repeats = fast ? 3 : 5;
  size_t rows = fast ? 150000 : 1000000;  // Higgs-scale in the full run
  size_t n_p = 64;

  bool avx2 = util::BestSupportedSimdLevel() == util::SimdLevel::kAvx2 &&
              storage::internal::Avx2AnnotateKernelsCompiled();

  // Scenario 1: an adaptation pass — n_p picked predicates (the paper's
  // workload mixture) over an unsorted Higgs-shaped table.
  storage::Table higgs = storage::MakeHiggs(rows, /*seed=*/17);
  util::Rng rng(17);
  std::vector<storage::RangePredicate> preds = workload::GenerateWorkload(
      higgs,
      {workload::GenMethod::kW1, workload::GenMethod::kW2,
       workload::GenMethod::kW3, workload::GenMethod::kW4,
       workload::GenMethod::kW5},
      n_p, &rng);
  ScenarioResult batch = RunScenario(higgs, preds, repeats, avx2);

  // Scenario 2: the same table clustered on column 0 with narrow range
  // predicates on it — the zone map rejects or wholesale-credits almost
  // every block, so the win must exceed the unsorted scenario's.
  higgs.SortByColumn(0);
  double lo = higgs.column(0).Min();
  double hi = higgs.column(0).Max();
  std::vector<storage::RangePredicate> clustered;
  util::Rng crng(19);
  for (size_t i = 0; i < n_p; ++i) {
    storage::RangePredicate p = storage::RangePredicate::FullRange(higgs);
    double center = lo + crng.Uniform(0.05, 0.95) * (hi - lo);
    double width = 0.02 * (hi - lo);
    p.low[0] = center - width / 2;
    p.high[0] = center + width / 2;
    clustered.push_back(p);
  }
  ScenarioResult sorted = RunScenario(higgs, clustered, repeats, avx2);

  const util::CpuFeatures& cpu = util::GetCpuFeatures();
  util::ParallelConfig hw;
  bench::JsonWriter json;
  json.BeginObject();
  json.Key("hardware_threads").Value(hw.ResolvedThreads());
  json.Key("cpu").BeginObject();
  json.Key("avx2").Value(cpu.avx2);
  json.Key("fma").Value(cpu.fma);
  json.EndObject();
  json.Key("annotate_kernels")
      .Value(avx2 ? "avx2" : "scalar");
  json.Key("zone_block_rows")
      .Value(static_cast<uint64_t>(storage::Column::kZoneBlockRows));
  EmitScenario(&json, "higgs_batch", batch);
  EmitScenario(&json, "higgs_clustered", sorted);
  bench::AttachMetricsSnapshot(&json);
  json.EndObject();
  bench::EmitJson(json, out_path);

  if (check) {
    if (!batch.exact || !sorted.exact) {
      std::cerr << "CHECK FAILED: engine counts differ from the seed scalar "
                   "scan\n";
      return 1;
    }
    if (avx2 && batch.fused_simd_s >= batch.seed_s) {
      std::cerr << "CHECK FAILED: fused SIMD pass ("
                << util::FormatDouble(batch.fused_simd_s, 4)
                << " s) not faster than the seed scalar scan ("
                << util::FormatDouble(batch.seed_s, 4) << " s)\n";
      return 1;
    }
  }
  return 0;
}
