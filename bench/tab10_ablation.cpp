// Table 10: ablation — replace the learned picker with uniform-random or
// entropy-based picking, and replace the GAN generator with AUG-style
// Gaussian noise; PRSA and Poker, c2 drift (w12/345), LM-mlp.
//
// Paper shape: full Warper ≥ every variant; P→random hurts most, entropy
// picking sits between, G→AUG is close behind full Warper.
#include "bench_common.h"

int main() {
  using namespace warper;
  bench::BenchInit();
  bench::BenchScale scale = bench::GetScale();

  util::PrintBanner(std::cout, "Table 10: ablating the Warper components");

  util::TablePrinter table({"Dataset", "Metric", "Warper", "P->rnd",
                            "P->entropy", "G->AUG"});

  for (const std::string dataset : {"PRSA", "Poker"}) {
    eval::SingleTableDriftSpec spec;
    spec.table_factory = bench::DatasetFactory(dataset, scale.table_rows);
    spec.workload = workload::WorkloadSpec::Parse("w12/345").ValueOrDie();
    spec.model_factory = eval::LmMlpFactory();
    spec.methods = {eval::Method::kFt, eval::Method::kWarper,
                    eval::Method::kWarperPickRandom,
                    eval::Method::kWarperPickEntropy,
                    eval::Method::kWarperGenAug};
    spec.config = bench::DefaultConfig(scale, /*seed=*/101);
    spec.config.gen_opts = bench::GenOptsFor(dataset);
    // A larger synthetic-query pool so the picker variants actually have
    // choices to differ on (the ablation isolates P and G contributions).
    spec.config.warper.gen_fraction = 0.5;

    eval::DriftExperimentResult result = eval::RunSingleTableDrift(spec);
    table.AddRow({dataset, "D.8",
                  util::FormatDouble(result.methods[1].deltas.d80, 1),
                  util::FormatDouble(result.methods[2].deltas.d80, 1),
                  util::FormatDouble(result.methods[3].deltas.d80, 1),
                  util::FormatDouble(result.methods[4].deltas.d80, 1)});
    table.AddRow({dataset, "D1",
                  util::FormatDouble(result.methods[1].deltas.d100, 1),
                  util::FormatDouble(result.methods[2].deltas.d100, 1),
                  util::FormatDouble(result.methods[3].deltas.d100, 1),
                  util::FormatDouble(result.methods[4].deltas.d100, 1)});
  }
  table.Print(std::cout);
  std::cout << "\nPaper (Table 10): PRSA D.8 4.8/3.3/3.8/4.6, "
               "Poker D.8 7.3/1.3/6.7/6.9 — the learned picker and "
               "generator both matter.\n";
  return 0;
}
