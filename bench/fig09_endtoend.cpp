// Figure 9 + Table 9: end-to-end query-performance gains on TPC-H L ⨝ O
// under continuous drifts.
//
// Three plan-flip scenarios (Table 9):
//   S1 buffer spill (single thread, predicate on L)       — paper gap 2.1×
//   S2 nested loop vs hash join (preds on L and O)        — paper gap 306×
//   S3 bitmap build side (multi-threaded, preds on both)  — paper gap 5.3×
// and three continuous drifts: A (workload w1→w2), B (half of each period
// drifts to w4), C (workload back to w1 + a data drift).
//
// For each (scenario, drift) cell we adapt the two per-table CE models with
// FT and with Warper and report, per adaptation step, the GMQ of the
// estimates and the average simulated latency of the plans an optimizer
// picks from them, against the true-cardinality plan baseline.
#include "bench_common.h"

#include <unordered_map>

#include "baselines/ft.h"
#include "baselines/warper_adapter.h"
#include "ce/lm.h"
#include "ce/metrics.h"
#include "ce/query_domain.h"
#include "qo/executor.h"
#include "storage/annotator.h"
#include "storage/data_drift.h"
#include "util/rng.h"
#include "util/stats.h"
#include "workload/generator.h"

namespace {

using namespace warper;

enum class Drift { kA, kB, kC };

const char* DriftName(Drift d) {
  switch (d) {
    case Drift::kA:
      return "A(w1->w2)";
    case Drift::kB:
      return "B(half w4)";
    case Drift::kC:
      return "C(w1+data)";
  }
  return "?";
}

// The per-step arrival mixture for a drift.
std::vector<workload::GenMethod> ArrivalMix(Drift d) {
  switch (d) {
    case Drift::kA:
      return {workload::GenMethod::kW2};
    case Drift::kB:
      return {workload::GenMethod::kW4, workload::GenMethod::kW1};
    case Drift::kC:
      return {workload::GenMethod::kW1};
  }
  return {};
}

struct TestQuery {
  qo::SpjQuery query;
  std::vector<double> l_features;
  std::vector<double> o_features;
  qo::ActualCardinalities actual;
};

}  // namespace

int main() {
  bench::BenchInit();
  bool fast = bench::FastMode();

  util::PrintBanner(std::cout,
                    "Figure 9 / Table 9: end-to-end gains on TPC-H L join O");

  size_t num_orders = fast ? 4000 : 15000;
  size_t train_n = fast ? 300 : 800;
  size_t test_n = fast ? 30 : 80;
  size_t steps = fast ? 3 : 5;
  size_t per_step = fast ? 40 : 72;

  std::vector<qo::Scenario> scenarios = {qo::Scenario::kBufferSpill,
                                         qo::Scenario::kJoinType,
                                         qo::Scenario::kBitmapSide};
  std::vector<Drift> drifts = {Drift::kA, Drift::kB, Drift::kC};

  util::TablePrinter gap_table(
      {"Scenario", "Executed as", "Pred on", "Latency gap (measured)"});
  double scenario_gap[3] = {1.0, 1.0, 1.0};

  for (qo::Scenario scenario : scenarios) {
    bool preds_on_orders = scenario != qo::Scenario::kBufferSpill;
    for (Drift drift : drifts) {
      // Fresh tables per cell (drift C mutates them).
      storage::TpchTables tables = storage::MakeTpch(num_orders, /*seed=*/91);
      storage::Annotator l_annotator(&tables.lineitem);
      storage::Annotator o_annotator(&tables.orders);
      ce::SingleTableDomain l_domain(&l_annotator);
      ce::SingleTableDomain o_domain(&o_annotator);
      util::Rng rng(91 + static_cast<uint64_t>(drift) * 13 +
                    static_cast<uint64_t>(scenario) * 101);

      auto make_examples = [&](const storage::Table& table,
                               const storage::Annotator& annotator,
                               const ce::SingleTableDomain& domain,
                               const std::vector<workload::GenMethod>& mix,
                               size_t n) {
        std::vector<storage::RangePredicate> preds =
            workload::GenerateWorkload(table, mix, n, &rng);
        std::vector<int64_t> counts = annotator.BatchCount(preds);
        std::vector<ce::LabeledExample> out(n);
        for (size_t i = 0; i < n; ++i) {
          out[i] = {domain.FeaturizePredicate(preds[i]), counts[i]};
        }
        return out;
      };

      // Seed models trained on w1 (§4.2).
      std::vector<workload::GenMethod> w1 = {workload::GenMethod::kW1};
      std::vector<ce::LabeledExample> l_train =
          make_examples(tables.lineitem, l_annotator, l_domain, w1, train_n);
      std::vector<ce::LabeledExample> o_train =
          make_examples(tables.orders, o_annotator, o_domain, w1, train_n);

      // Drift C: mutate the data before the episode begins.
      double changed_fraction = 0.0, canary_shift = 0.0;
      if (drift == Drift::kC) {
        std::vector<storage::RangePredicate> canaries =
            storage::MakeCanaryPredicates(tables.lineitem, 12, &rng);
        std::vector<int64_t> baseline = l_annotator.BatchCount(canaries);
        uint64_t snapshot = tables.lineitem.ChangeCounter();
        storage::UpdateRandomRows(&tables.lineitem, 0.5, &rng);
        changed_fraction = tables.lineitem.ChangedFractionSince(snapshot);
        canary_shift = storage::CanaryShift(l_annotator, canaries, baseline);
      }

      // Test queries from the drifted workload; actuals computed once
      // against the (post-drift) data.
      std::vector<workload::GenMethod> mix = ArrivalMix(drift);
      std::vector<TestQuery> tests(test_n);
      {
        std::vector<storage::RangePredicate> l_preds =
            workload::GenerateWorkload(tables.lineitem, mix, test_n, &rng);
        std::vector<storage::RangePredicate> o_preds =
            workload::GenerateWorkload(tables.orders, mix, test_n, &rng);
        for (size_t i = 0; i < test_n; ++i) {
          tests[i].query.lineitem_pred = l_preds[i];
          tests[i].query.orders_pred =
              preds_on_orders
                  ? o_preds[i]
                  : storage::RangePredicate::FullRange(tables.orders);
          tests[i].l_features = l_domain.FeaturizePredicate(l_preds[i]);
          tests[i].o_features =
              o_domain.FeaturizePredicate(tests[i].query.orders_pred);
          tests[i].actual = qo::ComputeActuals(tables, tests[i].query);
        }
      }

      qo::Optimizer optimizer;
      qo::Executor executor(&tables);

      // Perfect-CE baseline latency (and the Table-9 adversarial gap).
      double baseline_latency = 0.0;
      double max_gap = 1.0;
      for (const TestQuery& t : tests) {
        double good =
            executor.RunWithTrueCardinalities(t.actual, optimizer, scenario)
                .latency_ms;
        baseline_latency += good;
        // Adversarial misestimates that flip *only* each scenario's plan
        // decision (S1: grant; S2: join algorithm; S3: bitmap side).
        double act_l = static_cast<double>(t.actual.lineitem_rows);
        double act_o = static_cast<double>(t.actual.orders_rows);
        qo::PhysicalPlan bad_plan;
        if (scenario == qo::Scenario::kBitmapSide) {
          bad_plan = optimizer.Plan(act_l, act_o, scenario);
          bad_plan.bitmap_on_lineitem = !bad_plan.bitmap_on_lineitem;
        } else {
          bad_plan = optimizer.Plan(std::max(1.0, act_l / 100.0),
                                    std::max(1.0, act_o / 100.0), scenario);
        }
        double bad = executor.Execute(t.actual, bad_plan).latency_ms;
        max_gap = std::max(max_gap, bad / std::max(good, 1e-9));
      }
      baseline_latency /= static_cast<double>(tests.size());
      size_t scenario_idx = static_cast<size_t>(scenario);
      scenario_gap[scenario_idx] = std::max(scenario_gap[scenario_idx],
                                            max_gap);

      // Per-method adaptation loop over both table models.
      std::cout << "\n-- " << qo::ScenarioName(scenario) << " / drift "
                << DriftName(drift) << " (true-card plan latency "
                << util::FormatDouble(baseline_latency, 1) << " ms) --\n";
      for (bool use_warper : {false, true}) {
        ce::LmMlp l_model(l_domain.FeatureDim(), ce::LmMlpConfig{}, 91);
        ce::LmMlp o_model(o_domain.FeatureDim(), ce::LmMlpConfig{}, 92);
        {
          nn::Matrix x;
          std::vector<double> y;
          ce::ExamplesToMatrix(l_train, &x, &y);
          l_model.Train(x, y);
          ce::ExamplesToMatrix(o_train, &x, &y);
          o_model.Train(x, y);
        }

        baselines::AdapterContext l_ctx{&l_domain, &l_model, &l_train, 910};
        baselines::AdapterContext o_ctx{&o_domain, &o_model, &o_train, 920};
        core::WarperConfig wconfig;
        if (fast) {
          wconfig.n_i = 40;
          wconfig.n_p = 300;
        }
        std::unique_ptr<baselines::Adapter> l_adapter, o_adapter;
        if (use_warper) {
          l_adapter =
              std::make_unique<baselines::WarperAdapter>(l_ctx, wconfig);
          o_adapter =
              std::make_unique<baselines::WarperAdapter>(o_ctx, wconfig);
        } else {
          l_adapter = std::make_unique<baselines::FtAdapter>(l_ctx);
          o_adapter = std::make_unique<baselines::FtAdapter>(o_ctx);
        }

        auto evaluate = [&]() {
          std::vector<double> est_card, act_card, latencies;
          for (const TestQuery& t : tests) {
            double est_l = l_model.EstimateCardinality(t.l_features);
            double est_o = preds_on_orders
                               ? o_model.EstimateCardinality(t.o_features)
                               : static_cast<double>(tables.orders.NumRows());
            qo::PhysicalPlan plan = optimizer.Plan(est_l, est_o, scenario);
            latencies.push_back(executor.Execute(t.actual, plan).latency_ms);
            est_card.push_back(est_l);
            act_card.push_back(static_cast<double>(t.actual.lineitem_rows));
          }
          return std::make_pair(ce::Gmq(est_card, act_card),
                                util::Mean(latencies));
        };

        auto [gmq0, lat0] = evaluate();
        std::cout << "   " << (use_warper ? "Warper" : "FT    ") << ": step0"
                  << " GMQ=" << util::FormatDouble(gmq0, 2)
                  << " lat=" << util::FormatDouble(lat0, 1);
        for (size_t step = 1; step <= steps; ++step) {
          baselines::StepInfo info;
          if (step == 1) {
            info.data_changed_fraction = changed_fraction;
            info.canary_shift = canary_shift;
          }
          l_adapter->Step(make_examples(tables.lineitem, l_annotator, l_domain,
                                        mix, per_step),
                          info);
          if (preds_on_orders) {
            o_adapter->Step(make_examples(tables.orders, o_annotator, o_domain,
                                          mix, per_step),
                            info);
          }
          auto [gmq, lat] = evaluate();
          std::cout << " | step" << step
                    << " GMQ=" << util::FormatDouble(gmq, 2)
                    << " lat=" << util::FormatDouble(lat, 1);
        }
        std::cout << "\n";
      }
    }
  }

  for (qo::Scenario scenario : scenarios) {
    gap_table.AddRow(
        {qo::ScenarioName(scenario),
         scenario == qo::Scenario::kBitmapSide ? "Multi-thread"
                                               : "Single thread",
         scenario == qo::Scenario::kBufferSpill ? "L" : "L, O",
         util::FormatDouble(scenario_gap[static_cast<size_t>(scenario)], 1) +
             "x"});
  }
  std::cout << "\nTable 9 (max latency gap between accurate- and "
               "inaccurate-CE plans; paper: S1 2.1x, S2 306x, S3 5.3x):\n";
  gap_table.Print(std::cout);
  return 0;
}
