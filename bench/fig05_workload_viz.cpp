// Figure 5: PCA visualization of the w1..w5 predicate workloads on PRSA
// (§2's visualization method: SVD over all predicates, project onto the two
// highest-weighted eigenvectors). Prints per-workload 2-d centroids, spreads
// and a coarse occupancy grid — the textual equivalent of the scatter plots.
#include "bench_common.h"

#include "ml/pca.h"
#include "util/stats.h"
#include <algorithm>
#include "util/rng.h"
#include "workload/generator.h"

int main() {
  using namespace warper;
  bench::BenchInit();
  bench::BenchScale scale = bench::GetScale();

  util::PrintBanner(std::cout, "Figure 5: PCA views of workloads on PRSA");

  storage::Table table = storage::MakePrsa(scale.table_rows, /*seed=*/5);
  util::Rng rng(5);
  size_t per_workload = bench::FastMode() ? 200 : 500;

  // Generate every workload and fit one shared PCA (as the paper does:
  // "running SVD over all predicates").
  std::vector<std::vector<storage::RangePredicate>> workloads(5);
  size_t feature_dim = 2 * table.NumColumns();
  nn::Matrix all(5 * per_workload, feature_dim);
  for (int w = 0; w < 5; ++w) {
    workloads[w] = workload::GenerateWorkload(
        table, {static_cast<workload::GenMethod>(w)}, per_workload, &rng);
    for (size_t i = 0; i < per_workload; ++i) {
      all.SetRow(w * per_workload + i, workloads[w][i].Featurize(table));
    }
  }
  ml::Pca pca;
  pca.Fit(all, 2);
  nn::Matrix projected = pca.Transform(all);
  std::cout << "PCA explained variance (2 components): "
            << util::FormatDouble(100.0 * pca.ExplainedVarianceRatio(), 1)
            << "%\n\n";

  // Global bounds for the occupancy grid.
  double x_min = projected.At(0, 0), x_max = x_min;
  double y_min = projected.At(0, 1), y_max = y_min;
  for (size_t r = 0; r < projected.rows(); ++r) {
    x_min = std::min(x_min, projected.At(r, 0));
    x_max = std::max(x_max, projected.At(r, 0));
    y_min = std::min(y_min, projected.At(r, 1));
    y_max = std::max(y_max, projected.At(r, 1));
  }

  util::TablePrinter table_out(
      {"Workload", "centroid_x", "centroid_y", "spread_x", "spread_y"});
  for (int w = 0; w < 5; ++w) {
    std::vector<double> xs, ys;
    for (size_t i = 0; i < per_workload; ++i) {
      xs.push_back(projected.At(w * per_workload + i, 0));
      ys.push_back(projected.At(w * per_workload + i, 1));
    }
    table_out.AddRow({workload::GenMethodName(static_cast<workload::GenMethod>(w)),
                      util::FormatDouble(util::Mean(xs), 2),
                      util::FormatDouble(util::Mean(ys), 2),
                      util::FormatDouble(util::StdDev(xs), 2),
                      util::FormatDouble(util::StdDev(ys), 2)});
  }
  table_out.Print(std::cout);

  // ASCII density panels, one per workload (the scatter plots of Figure 5).
  constexpr int kGrid = 18;
  for (int w = 0; w < 5; ++w) {
    std::cout << "\n"
              << workload::GenMethodName(static_cast<workload::GenMethod>(w))
              << ":\n";
    std::vector<std::vector<int>> grid(kGrid, std::vector<int>(kGrid, 0));
    for (size_t i = 0; i < per_workload; ++i) {
      double x = projected.At(w * per_workload + i, 0);
      double y = projected.At(w * per_workload + i, 1);
      int gx = std::min(kGrid - 1, static_cast<int>((x - x_min) /
                                                    (x_max - x_min) * kGrid));
      int gy = std::min(kGrid - 1, static_cast<int>((y - y_min) /
                                                    (y_max - y_min) * kGrid));
      ++grid[gy][gx];
    }
    for (int gy = kGrid - 1; gy >= 0; --gy) {
      std::cout << "  ";
      for (int gx = 0; gx < kGrid; ++gx) {
        int c = grid[gy][gx];
        std::cout << (c == 0 ? '.' : (c < 3 ? '+' : (c < 8 ? 'o' : '#')));
      }
      std::cout << "\n";
    }
  }
  return 0;
}
