// Figure 10: varying the encoder/generator network shape (width of the
// hidden layers, number of layers, embedding size) around the Table-3
// default, PRSA c2 drift.
//
// Paper shape: hyper-parameter choices move the speedup somewhat but no
// clear winner emerges over the simple default.
#include "bench_common.h"

int main() {
  using namespace warper;
  bench::BenchInit();
  bench::BenchScale scale = bench::GetScale();

  util::PrintBanner(std::cout, "Figure 10: E/G hyper-parameter sweep (PRSA)");

  struct Variant {
    const char* label;
    size_t hidden_units;
    size_t hidden_layers;
    size_t embedding_dim;
  };
  std::vector<Variant> variants = {
      {"64x2,|z|=8", 64, 2, 8},     {"128x3,|z|=16 (default)", 128, 3, 16},
      {"128x2,|z|=16", 128, 2, 16}, {"256x3,|z|=16", 256, 3, 16},
      {"128x3,|z|=32", 128, 3, 32},
  };

  util::TablePrinter table({"E/G shape", "D.5", "D.8", "D1"});
  for (const Variant& v : variants) {
    eval::SingleTableDriftSpec spec;
    spec.table_factory = bench::DatasetFactory("PRSA", scale.table_rows);
    spec.workload = workload::WorkloadSpec::Parse("w12/345").ValueOrDie();
    spec.model_factory = eval::LmMlpFactory();
    spec.methods = {eval::Method::kFt, eval::Method::kWarper};
    spec.config = bench::DefaultConfig(scale, /*seed=*/103);
    spec.config.warper.hidden_units = v.hidden_units;
    spec.config.warper.hidden_layers = v.hidden_layers;
    spec.config.warper.embedding_dim = v.embedding_dim;

    eval::DriftExperimentResult result = eval::RunSingleTableDrift(spec);
    table.AddRow({v.label,
                  util::FormatDouble(result.methods[1].deltas.d50, 1),
                  util::FormatDouble(result.methods[1].deltas.d80, 1),
                  util::FormatDouble(result.methods[1].deltas.d100, 1)});
  }
  table.Print(std::cout);
  std::cout << "\nPaper shape: tuning shifts results without a clear winner; "
               "the simple Table-3 default is competitive.\n";
  return 0;
}
